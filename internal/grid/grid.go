// Package grid is the simulated execution backend: it realizes the
// paper's testbed — two clusters behind a serialized master uplink, batch
// access latencies, heterogeneous nodes, stochastic compute times, and
// (for the case study) non-dedicated hosts with background load — as a
// discrete-event model the engine drives through the same Backend
// interface as the live runtime.
//
// Time is virtual: a full multi-hour experiment simulates in
// milliseconds, which is what makes the paper's 10-run averages over six
// algorithms reproducible on a laptop.
package grid

import (
	"fmt"
	"math"

	"apstdv/internal/model"
	"apstdv/internal/obs"
	"apstdv/internal/rng"
	"apstdv/internal/sim"
	"apstdv/internal/units"
)

// Config tunes backend behaviour beyond what the platform and application
// models specify.
type Config struct {
	// Seed drives all stochastic processes; runs with equal seeds are
	// bit-identical.
	Seed uint64
	// CommJitter is a coefficient of variation applied to transfer
	// durations. The paper's testbed had a stable network; the default 0
	// matches it, and the uncertainty ablation raises it.
	CommJitter float64
	// ProbeBias scales probe compute times, modelling an unrepresentative
	// probe file ("representative may mean close to the average case",
	// §3.5 — a probe costing 1.2× the average biases every speed estimate
	// by 20%). 0 means unbiased (1.0).
	ProbeBias float64
	// Metrics, when non-nil, records backend-level occupancy the engine
	// cannot see: compute-queue depths, batch-scheduler hold times, and
	// downlink busy time. Purely observational — never feeds back into
	// the simulation, so instrumented runs stay bit-identical.
	Metrics *obs.GridMetrics
	// Faults injects deterministic worker failures (see FaultPlan). nil
	// disables injection with zero overhead and no rng consumption.
	Faults *FaultPlan
	// Shares models concurrent occupancy of the workers: entry w is the
	// fraction of worker w's CPU this job actually gets, in (0, 1].
	// Compute times stretch by 1/share — a worker at share 0.5 runs this
	// job's chunks at half its nominal Speed. nil means dedicated
	// workers; the scheduling path is then byte-identical to a backend
	// that predates shares (not a single extra float op).
	Shares []float64
	// UplinkShare models concurrent occupancy of the master's serialized
	// uplink: the fraction of its bandwidth this job gets, in (0, 1].
	// Transfer (and output-return) bandwidth scales by it; the per-link
	// access latency does not. 0 means dedicated (1.0). Under a topology
	// it scales every link capacity instead (see linkNet.reset).
	UplinkShare float64
	// Events, when non-nil, receives backend-level link busy/idle events
	// (obs.LinkBusy / obs.LinkIdle) from the link-graph network model,
	// on its own dense sequence. Only topology-carrying platforms ever
	// emit; legacy flat platforms never touch this sink, so their
	// engine-level streams stay byte-identical.
	Events obs.Sink
	// LinkMetrics, when non-nil, records per-link bytes carried and busy
	// fractions. Purely observational, like Metrics.
	LinkMetrics *obs.LinkMetrics
}

// opKind distinguishes the three operation flavours tracked in the
// backend's op table.
type opKind uint8

const (
	opTransfer opKind = iota
	opExecute
	opReturn
)

// gridOp is one in-flight backend operation: the state its duration and
// completion callbacks need, held in a reusable table slot so issuing an
// operation allocates nothing. Slots are freed exactly when the
// operation completes (every op completes — the simulation drains), so
// no generation fencing is needed.
type gridOp struct {
	kind  opKind
	w     int32
	probe bool
	// size is load units for opExecute, bytes for opReturn.
	size float64
	// op is the caller's opaque token, handed back through done.
	op   uint64
	done func(op uint64, start, end float64, err error)
	// err is set by the duration callback (crash truncation) and
	// consumed by the completion callback.
	err error
	// start is the transfer's start time (opTransfer only; queue-served
	// kinds get their window from the queue).
	start units.Seconds
}

// Backend simulates a Platform executing an Application.
type Backend struct {
	eng      *sim.Engine
	timers   *sim.Timers
	platform *model.Platform
	app      *model.Application
	cfg      Config

	compute  []*sim.FCFSQueue // one per worker CPU
	downlink *sim.FCFSQueue   // output return path, parallel to the uplink

	compRNG []*rng.Source // per-worker compute noise
	commRNG *rng.Source
	bg      []*bgProcess
	batch   []*batchState
	faults  []faultState // nil when no faults are injected
	links   *linkNet     // nil unless the platform carries a Topology

	// Op table (see gridOp) and the long-lived callbacks all operations
	// dispatch through, built once in New.
	ops            []gridOp
	opFree         []int32
	transferFireFn func(uint64)
	execDurFn      func(uint64, units.Seconds) units.Seconds
	execDoneFn     func(uint64, units.Seconds, units.Seconds)
	returnDurFn    func(uint64, units.Seconds) units.Seconds
	returnDoneFn   func(uint64, units.Seconds, units.Seconds)
}

// New validates the models and returns a backend positioned at time zero.
func New(p *model.Platform, a *model.Application, cfg Config) (*Backend, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	eng := sim.New()
	b := &Backend{
		eng:      eng,
		timers:   sim.NewTimers(eng, 0),
		platform: p,
		downlink: sim.NewFCFSQueue(eng),
		commRNG:  rng.New(0),
	}
	b.transferFireFn = b.transferFire
	b.execDurFn = b.execDur
	b.execDoneFn = b.execDone
	b.returnDurFn = b.returnDur
	b.returnDoneFn = b.returnDone
	if p.Topology != nil {
		b.links = newLinkNet(b)
	}
	for i := range p.Workers {
		b.compute = append(b.compute, sim.NewFCFSQueue(eng))
		b.compRNG = append(b.compRNG, rng.New(0))
		w := p.Workers[i]
		if w.Background != nil {
			b.bg = append(b.bg, &bgProcess{cfg: w.Background, src: rng.New(0)})
		} else {
			b.bg = append(b.bg, nil)
		}
		if w.Batch != nil {
			b.batch = append(b.batch, &batchState{cfg: w.Batch, src: rng.New(0)})
		} else {
			b.batch = append(b.batch, nil)
		}
	}
	if err := b.Reset(a, cfg); err != nil {
		return nil, err
	}
	return b, nil
}

// Reset rewinds the backend to time zero for a fresh run of app under
// cfg on the same platform, reusing every structure New built: the event
// arena, timer wheel, FCFS queues, rng streams (reseeded in place), and
// the op table. A reset backend produces output bit-identical to a
// freshly constructed one with the same arguments — stream seeds are
// derived from the same labels, the clock and event sequence restart
// from zero, and every stochastic process re-initializes exactly as in
// New. Call it only between runs (never while the engine is mid-drain).
func (b *Backend) Reset(a *model.Application, cfg Config) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if cfg.CommJitter < 0 {
		return fmt.Errorf("grid: negative comm jitter %g", cfg.CommJitter)
	}
	if cfg.ProbeBias == 0 {
		cfg.ProbeBias = 1
	}
	if cfg.ProbeBias < 0 {
		return fmt.Errorf("grid: negative probe bias %g", cfg.ProbeBias)
	}
	if cfg.Shares != nil {
		if len(cfg.Shares) != len(b.platform.Workers) {
			return fmt.Errorf("grid: %d shares for %d workers", len(cfg.Shares), len(b.platform.Workers))
		}
		for w, s := range cfg.Shares {
			if s <= 0 || s > 1 {
				return fmt.Errorf("grid: share %g for worker %d outside (0, 1]", s, w)
			}
		}
	}
	if cfg.UplinkShare < 0 || cfg.UplinkShare > 1 {
		return fmt.Errorf("grid: uplink share %g outside (0, 1]", cfg.UplinkShare)
	}
	b.app = a
	b.cfg = cfg
	b.eng.Reset()
	b.timers.Reset()
	b.downlink.Reset()
	b.commRNG.Seed(rng.StreamSeed(cfg.Seed, "comm"))
	for i := range b.platform.Workers {
		b.compute[i].Reset()
		b.compRNG[i].Seed(rng.IndexedStreamSeed(cfg.Seed, "comp/", i))
		if b.bg[i] != nil {
			b.bg[i].src.Seed(rng.IndexedStreamSeed(cfg.Seed, "bg/", i))
			b.bg[i].reset()
		}
		if b.batch[i] != nil {
			b.batch[i].src.Seed(rng.IndexedStreamSeed(cfg.Seed, "batch/", i))
			b.batch[i].reset()
		}
	}
	b.faults = compileFaults(cfg.Faults, len(b.platform.Workers))
	b.ops = b.ops[:0]
	b.opFree = b.opFree[:0]
	if b.links != nil {
		b.links.reset()
	}
	return nil
}

// allocOp reserves an op-table slot.
func (b *Backend) allocOp() int32 {
	if n := len(b.opFree); n > 0 {
		slot := b.opFree[n-1]
		b.opFree = b.opFree[:n-1]
		return slot
	}
	b.ops = append(b.ops, gridOp{})
	return int32(len(b.ops) - 1)
}

// freeOp returns a slot to the table, dropping callback references.
func (b *Backend) freeOp(slot int32) {
	b.ops[slot] = gridOp{}
	b.opFree = append(b.opFree, slot)
}

// Now implements engine.Backend.
func (b *Backend) Now() float64 { return float64(b.eng.Now()) }

// Workers implements engine.Backend.
func (b *Backend) Workers() int { return len(b.platform.Workers) }

// Run implements engine.Backend: process events until quiescent.
func (b *Backend) Run() { b.eng.Run() }

// AfterFunc implements engine.Timer on the virtual clock, so engine
// stage deadlines are as deterministic as everything else in the
// simulation. Timers go through the hierarchical timer wheel
// (sim.Timers): a deadline armed and then cancelled on normal stage
// completion — the overwhelmingly common case — costs O(1) and
// allocates nothing, instead of churning the event heap.
func (b *Backend) AfterFunc(d float64, fn func(uint64)) uint64 {
	return b.timers.After(units.Seconds(d), fn)
}

// CancelTimer implements engine.Timer. Cancelled timers leave no trace
// in the event stream.
func (b *Backend) CancelTimer(id uint64) {
	b.timers.Cancel(id)
}

// TransferOp moves bytes to worker w over the master uplink, reporting
// completion as done(op, start, end, err) through a long-lived callback
// — the closure-free form of Transfer the engine's hot dispatch path
// uses (engine.OpBackend). The engine issues at most one outstanding
// transfer, which is how the model realizes the serialized uplink. A
// transfer to a crashed worker fails — immediately when the worker is
// already down, at the crash instant when it dies mid-transfer.
//
// When the platform carries a Topology the transfer instead becomes a
// fluid flow over the worker's link route (see links.go): concurrent
// transfers share link capacity fairly rather than serializing, so the
// engine should normally lift its one-transfer rule (ParallelUplink) to
// let the contention model do the serializing.
func (b *Backend) TransferOp(w int, bytes float64, op uint64, done func(op uint64, start, end float64, err error)) {
	if b.links != nil {
		slot := b.allocOp()
		o := &b.ops[slot]
		o.kind = opTransfer
		o.w = int32(w)
		o.op = op
		o.done = done
		o.start = b.eng.Now()
		b.links.start(b.platform.Topology.Route(w), w, bytes, slot)
		return
	}
	wk := b.platform.Workers[w]
	bw := float64(wk.Bandwidth)
	if b.cfg.UplinkShare > 0 {
		bw *= b.cfg.UplinkShare
	}
	d := float64(wk.CommLatency) + bytes/bw
	if b.cfg.CommJitter > 0 {
		d *= b.commRNG.TruncNormal(1, b.cfg.CommJitter, 0.1)
	}
	start := b.eng.Now()
	slot := b.allocOp()
	o := &b.ops[slot]
	o.kind = opTransfer
	o.w = int32(w)
	o.op = op
	o.done = done
	o.start = start
	delay := units.Seconds(d)
	if b.faults != nil {
		crashAt := b.faults[w].crashAt
		if float64(start) >= crashAt {
			o.err = crashErr(w, crashAt)
			delay = 0
		} else if float64(start)+d > crashAt {
			o.err = crashErr(w, crashAt)
			delay = units.Seconds(crashAt - float64(start))
		}
	}
	b.eng.AfterArg(delay, b.transferFireFn, uint64(slot))
}

// transferFire completes a transfer-style op: every TransferOp (and the
// zero-byte ReturnOutputOp fast path) fires through this one callback.
func (b *Backend) transferFire(arg uint64) {
	slot := int32(arg)
	o := &b.ops[slot]
	done, op, start, err := o.done, o.op, o.start, o.err
	b.freeOp(slot)
	done(op, float64(start), float64(b.eng.Now()), err)
}

// Transfer implements engine.Backend: the closure form of TransferOp,
// kept for the probing/calibration paths and non-arena callers.
func (b *Backend) Transfer(w int, bytes float64, done func(start, end float64, err error)) {
	b.TransferOp(w, bytes, 0, func(_ uint64, start, end float64, err error) {
		done(start, end, err)
	})
}

// ExecuteOp runs size load units on worker w's CPU (FIFO behind whatever
// the worker is already doing), reporting completion as
// done(op, start, end, err) through a long-lived callback — the
// closure-free form of Execute (engine.OpBackend). size 0 models a no-op
// calibration job that costs only the computation start-up latency.
// Probe work computes a fixed, representative input (the user's probe
// file), so it sees the host's time-varying background load but not the
// application's data-dependent cost variability.
func (b *Backend) ExecuteOp(w int, size float64, probe bool, op uint64, done func(op uint64, start, end float64, err error)) {
	b.cfg.Metrics.EnqueueCompute(b.compute[w].QueueLength())
	slot := b.allocOp()
	o := &b.ops[slot]
	o.kind = opExecute
	o.w = int32(w)
	o.probe = probe
	o.size = size
	o.op = op
	o.done = done
	b.compute[w].EnqueueArg(uint64(slot), b.execDurFn, b.execDoneFn)
}

// execDur is every compute service's duration callback: the cost model
// evaluated at service start, with crash windows truncating the job.
func (b *Backend) execDur(arg uint64, start units.Seconds) units.Seconds {
	o := &b.ops[int32(arg)]
	w := int(o.w)
	wk := b.platform.Workers[w]
	base := o.size * float64(b.app.UnitCost) / wk.Speed
	if b.cfg.Shares != nil {
		base /= b.cfg.Shares[w]
	}
	if o.probe {
		base *= b.cfg.ProbeBias
	} else {
		base *= b.noise(w, o.size)
	}
	hold := 0.0
	if b.batch[w] != nil {
		hold = b.batch[w].startDelay(float64(start))
		b.cfg.Metrics.BatchHold(hold)
	}
	stretched := base
	if b.bg[w] != nil && base > 0 {
		stretched = b.bg[w].finish(float64(start)+hold, base)
	}
	dur := hold + float64(wk.CompLatency) + stretched
	if b.faults != nil {
		fs := &b.faults[w]
		if fs.crashAt <= float64(start) {
			o.err = crashErr(w, fs.crashAt)
			return 0
		}
		// Stall/slowdown windows stretch the computation; a crash
		// mid-job truncates it into a failure at the crash instant.
		dur = hold + float64(wk.CompLatency) + fs.stretch(float64(start)+hold+float64(wk.CompLatency), stretched)
		if float64(start)+dur > fs.crashAt {
			o.err = crashErr(w, fs.crashAt)
			return units.Seconds(fs.crashAt - float64(start))
		}
	}
	return units.Seconds(dur)
}

// execDone is every compute service's completion callback.
func (b *Backend) execDone(arg uint64, start, end units.Seconds) {
	slot := int32(arg)
	o := &b.ops[slot]
	done, op, err := o.done, o.op, o.err
	b.freeOp(slot)
	done(op, float64(start), float64(end), err)
}

// Execute implements engine.Backend: the closure form of ExecuteOp, kept
// for the probing/calibration paths and non-arena callers.
func (b *Backend) Execute(w int, size float64, probe bool, done func(start, end float64, err error)) {
	b.ExecuteOp(w, size, probe, 0, func(_ uint64, start, end float64, err error) {
		done(start, end, err)
	})
}

// noise returns the multiplicative compute-time perturbation for a chunk
// of the given size, per the application's uncertainty model.
func (b *Backend) noise(w int, size float64) float64 {
	g := b.app.Gamma
	if g <= 0 || size <= 0 {
		return 1
	}
	cv := g
	if b.app.Uncertainty == model.PerUnit {
		// Independent unit costs: the chunk-level CV shrinks with the
		// square root of the number of units.
		cv = g / math.Sqrt(size)
	}
	return b.compRNG[w].TruncNormal(1, cv, 0.1)
}

// ReturnOutputOp moves output bytes from worker w back to the master
// over the downlink (FIFO, parallel to the uplink), reporting completion
// as done(op, start, end, err) through a long-lived callback — the
// closure-free form of ReturnOutput (engine.OpBackend). Zero bytes
// complete immediately without occupying the downlink.
func (b *Backend) ReturnOutputOp(w int, bytes float64, op uint64, done func(op uint64, start, end float64, err error)) {
	slot := b.allocOp()
	o := &b.ops[slot]
	o.w = int32(w)
	o.op = op
	o.done = done
	if bytes <= 0 {
		o.kind = opTransfer // transfer-style fire: done(now, now, nil)
		o.start = b.eng.Now()
		b.eng.AfterArg(0, b.transferFireFn, uint64(slot))
		return
	}
	o.kind = opReturn
	o.size = bytes
	b.downlink.EnqueueArg(uint64(slot), b.returnDurFn, b.returnDoneFn)
}

// returnDur is every downlink service's duration callback.
func (b *Backend) returnDur(arg uint64, start units.Seconds) units.Seconds {
	o := &b.ops[int32(arg)]
	w := int(o.w)
	wk := b.platform.Workers[w]
	bw := float64(wk.Bandwidth)
	if b.cfg.UplinkShare > 0 {
		bw *= b.cfg.UplinkShare
	}
	d := float64(wk.CommLatency) + o.size/bw
	if b.cfg.CommJitter > 0 {
		d *= b.commRNG.TruncNormal(1, b.cfg.CommJitter, 0.1)
	}
	if b.faults != nil {
		fs := &b.faults[w]
		if fs.crashAt <= float64(start) {
			o.err = crashErr(w, fs.crashAt)
			return 0
		}
		if float64(start)+d > fs.crashAt {
			o.err = crashErr(w, fs.crashAt)
			return units.Seconds(fs.crashAt - float64(start))
		}
	}
	return units.Seconds(d)
}

// returnDone is every downlink service's completion callback.
func (b *Backend) returnDone(arg uint64, start, end units.Seconds) {
	slot := int32(arg)
	o := &b.ops[slot]
	done, op, err := o.done, o.op, o.err
	b.freeOp(slot)
	b.cfg.Metrics.DownlinkBusy(float64(end - start))
	done(op, float64(start), float64(end), err)
}

// ReturnOutput implements engine.Backend: the closure form of
// ReturnOutputOp, kept for non-arena callers.
func (b *Backend) ReturnOutput(w int, bytes float64, done func(start, end float64, err error)) {
	b.ReturnOutputOp(w, bytes, 0, func(_ uint64, start, end float64, err error) {
		done(start, end, err)
	})
}

// bgProcess is the two-state Markov-modulated CPU thief of non-dedicated
// hosts. Queries must come with non-decreasing start times, which holds
// because each worker's compute queue is FIFO.
type bgProcess struct {
	cfg        *model.BackgroundLoad
	src        *rng.Source
	t          float64 // timeline position up to which state is decided
	on         bool
	nextSwitch float64
}

func newBGProcess(cfg *model.BackgroundLoad, src *rng.Source) *bgProcess {
	p := &bgProcess{cfg: cfg, src: src}
	p.reset()
	return p
}

// reset re-derives the process's initial state from its (re-seeded)
// source, drawing exactly as construction does.
func (p *bgProcess) reset() {
	p.t = 0
	// Start in the stationary distribution so early chunks see the same
	// load climate as late ones.
	pOn := float64(p.cfg.MeanOn) / float64(p.cfg.MeanOn+p.cfg.MeanOff)
	p.on = p.src.Float64() < pOn
	p.nextSwitch = p.src.Exp(p.meanSojourn())
}

func (p *bgProcess) meanSojourn() float64 {
	if p.on {
		return float64(p.cfg.MeanOn)
	}
	return float64(p.cfg.MeanOff)
}

// finish returns the wall time needed to complete `work` seconds of CPU
// demand starting at time start, given the host's time-varying available
// CPU share.
func (p *bgProcess) finish(start, work float64) float64 {
	if start < p.t {
		// FIFO guarantees monotonicity; tolerate exact ties.
		start = p.t
	}
	p.advanceTo(start)
	t := start
	for work > 1e-12 {
		rate := 1.0
		if p.on {
			rate = 1 - p.cfg.Share
		}
		span := p.nextSwitch - t
		if need := work / rate; need <= span {
			t += need
			work = 0
		} else {
			work -= span * rate
			t = p.nextSwitch
			p.toggle()
		}
	}
	p.t = t
	return t - start
}

func (p *bgProcess) advanceTo(t float64) {
	for p.nextSwitch <= t {
		p.toggle()
	}
	p.t = t
}

func (p *bgProcess) toggle() {
	p.on = !p.on
	p.nextSwitch += p.src.Exp(p.meanSojourn())
}
