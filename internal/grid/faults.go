package grid

// This file is the fault-injection layer: seeded, deterministic worker
// crashes, stalls, and slowdowns that surface to the engine as
// operation errors (crash) or late completions (stall, slowdown), so
// the chunk-lifecycle retry layer can be exercised reproducibly. A nil
// FaultPlan leaves every code path and every rng stream untouched —
// zero-fault runs are byte-identical to a build without this file.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"apstdv/internal/rng"
)

// ErrWorkerDown marks operations that failed because the target worker
// crashed. Engine-level error mapping can match it with errors.Is.
var ErrWorkerDown = errors.New("grid: worker down")

// FaultKind classifies one injected fault.
type FaultKind int

const (
	// FaultCrash kills the worker at time At: operations in progress
	// fail then, later ones fail immediately.
	FaultCrash FaultKind = iota
	// FaultStall freezes the worker's CPU for Duration seconds starting
	// at At: computations in progress make no headway and finish late —
	// invisible to the engine except through stage deadlines.
	FaultStall
	// FaultSlowdown divides the worker's CPU speed by Factor during
	// [At, At+Duration).
	FaultSlowdown
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultStall:
		return "stall"
	case FaultSlowdown:
		return "slowdown"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// WorkerFault is one injected fault.
type WorkerFault struct {
	Worker int
	Kind   FaultKind
	// At is the fault's onset in simulation seconds.
	At float64
	// Duration bounds stall and slowdown windows (ignored for crashes);
	// non-positive windows are dropped.
	Duration float64
	// Factor is the slowdown divisor (e.g. 4 = quarter speed); values
	// <= 1 make the window a no-op.
	Factor float64
}

// FaultPlan is the full injection schedule for one run.
type FaultPlan struct {
	Faults []WorkerFault
}

// RandomCrashPlan draws an independent crash for each worker with the
// given probability, uniformly timed in [from, to). The draw order is
// fixed (worker 0..n-1, one probability draw each, one time draw per
// crash), so equal seeds give equal plans. If every worker drew a
// crash, the latest one is dropped — a run with no survivors can only
// degrade to a partial result, which the sweep treats separately.
func RandomCrashPlan(seed uint64, workers int, prob, from, to float64) *FaultPlan {
	src := rng.Stream(seed, "fault/crash")
	var faults []WorkerFault
	for w := 0; w < workers; w++ {
		if src.Float64() < prob {
			faults = append(faults, WorkerFault{Worker: w, Kind: FaultCrash, At: src.Uniform(from, to)})
		}
	}
	if len(faults) == workers && workers > 0 {
		latest := 0
		for i, f := range faults {
			if f.At > faults[latest].At {
				latest = i
			}
		}
		faults = append(faults[:latest], faults[latest+1:]...)
	}
	if len(faults) == 0 {
		return nil
	}
	return &FaultPlan{Faults: faults}
}

// faultWindow is a span of reduced CPU availability: rate 0 (stall) or
// 1/Factor (slowdown).
type faultWindow struct {
	start, end, rate float64
}

// faultState is one worker's compiled fault schedule.
type faultState struct {
	crashAt float64 // +Inf when the worker never crashes
	windows []faultWindow
}

// compileFaults turns a plan into per-worker state. Returns nil for a
// nil/empty plan so the hot paths can gate on one pointer check.
func compileFaults(plan *FaultPlan, workers int) []faultState {
	if plan == nil || len(plan.Faults) == 0 {
		return nil
	}
	fs := make([]faultState, workers)
	for i := range fs {
		fs[i].crashAt = math.Inf(1)
	}
	for _, f := range plan.Faults {
		if f.Worker < 0 || f.Worker >= workers {
			continue
		}
		st := &fs[f.Worker]
		switch f.Kind {
		case FaultCrash:
			if f.At < st.crashAt {
				st.crashAt = f.At
			}
		case FaultStall:
			if f.Duration > 0 {
				st.windows = append(st.windows, faultWindow{f.At, f.At + f.Duration, 0})
			}
		case FaultSlowdown:
			if f.Duration > 0 && f.Factor > 1 {
				st.windows = append(st.windows, faultWindow{f.At, f.At + f.Duration, 1 / f.Factor})
			}
		}
	}
	for i := range fs {
		sort.Slice(fs[i].windows, func(a, b int) bool {
			return fs[i].windows[a].start < fs[i].windows[b].start
		})
	}
	return fs
}

// rateAt returns the CPU availability at time t and the horizon up to
// which that rate holds.
func (f *faultState) rateAt(t float64) (rate, until float64) {
	rate, until = 1, math.Inf(1)
	for _, w := range f.windows {
		if t >= w.start && t < w.end {
			return w.rate, w.end
		}
		if w.start > t && w.start < until {
			until = w.start
		}
	}
	return rate, until
}

// stretch returns the wall time to complete work seconds of CPU demand
// starting at start, walking the fault windows piecewise (the same
// shape as bgProcess.finish). Overlapping windows resolve to the first
// one in start order.
func (f *faultState) stretch(start, work float64) float64 {
	if len(f.windows) == 0 {
		return work
	}
	t := start
	for work > 1e-12 {
		rate, until := f.rateAt(t)
		if rate <= 0 {
			// Stalled: no headway until the window closes. Windows are
			// finite by construction, so until is too.
			t = until
			continue
		}
		if need := work / rate; t+need <= until {
			t += need
			work = 0
		} else {
			work -= (until - t) * rate
			t = until
		}
	}
	return t - start
}

// crashErr builds the deterministic operation error for a crashed
// worker.
func crashErr(w int, at float64) error {
	return fmt.Errorf("%w: worker %d crashed at t=%.3gs", ErrWorkerDown, w, at)
}
