package trace

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	tr := New("umr", "testbed")
	tr.Add(Record{Chunk: 1, Worker: 0, Offset: -1, Size: 10, Probe: true,
		SendStart: 0, SendEnd: 1, CompStart: 1, CompEnd: 2, OutputEnd: 2})
	tr.Add(Record{Chunk: 2, Worker: 0, Offset: 0, Size: 100,
		SendStart: 1, SendEnd: 3, CompStart: 3, CompEnd: 13, OutputEnd: 13})
	tr.Add(Record{Chunk: 3, Worker: 1, Offset: 100, Size: 200,
		SendStart: 3, SendEnd: 7, CompStart: 7, CompEnd: 27, OutputEnd: 30})
	return tr
}

func TestMakespan(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Makespan(); got != 30 {
		t.Errorf("Makespan = %g, want 30 (output arrival)", got)
	}
	if New("x", "y").Makespan() != 0 {
		t.Error("empty trace makespan should be 0")
	}
}

func TestRecordDurations(t *testing.T) {
	r := Record{SendStart: 1, SendEnd: 3, CompStart: 4, CompEnd: 9}
	if r.TransferTime() != 2 || r.ComputeTime() != 5 {
		t.Errorf("durations %g/%g, want 2/5", r.TransferTime(), r.ComputeTime())
	}
}

func TestBuildReportCounts(t *testing.T) {
	rep := sampleTrace().BuildReport(2)
	if rep.Chunks != 2 || rep.Probes != 1 {
		t.Errorf("chunks/probes = %d/%d, want 2/1", rep.Chunks, rep.Probes)
	}
	if rep.TotalLoad != 300 {
		t.Errorf("TotalLoad = %g, want 300", rep.TotalLoad)
	}
	if rep.CommTime != 6 { // 2 + 4, probe excluded
		t.Errorf("CommTime = %g, want 6", rep.CommTime)
	}
	if rep.CompTime != 30 { // 10 + 20
		t.Errorf("CompTime = %g, want 30", rep.CompTime)
	}
}

func TestBuildReportWorkerMetrics(t *testing.T) {
	rep := sampleTrace().BuildReport(2)
	if math.Abs(rep.WorkerUtil[0]-10.0/30) > 1e-12 {
		t.Errorf("worker 0 util = %g, want 1/3", rep.WorkerUtil[0])
	}
	if rep.WorkerLoad[0] != 100 || rep.WorkerLoad[1] != 200 {
		t.Errorf("worker loads = %v", rep.WorkerLoad)
	}
	if rep.LastChunkSizes[0] != 100 || rep.LastChunkSizes[1] != 200 {
		t.Errorf("last chunk sizes = %v", rep.LastChunkSizes)
	}
	// Front idle: worker 0 first computes at 3, worker 1 at 7 → mean 5.
	if math.Abs(rep.IdleFront-5) > 1e-12 {
		t.Errorf("IdleFront = %g, want 5", rep.IdleFront)
	}
}

func TestOverlapFullyPipelined(t *testing.T) {
	tr := New("a", "b")
	// Communication [0,10], computation [0,10]: total overlap.
	tr.Add(Record{Worker: 0, Size: 1, SendStart: 0, SendEnd: 10, CompStart: 0, CompEnd: 10})
	rep := tr.BuildReport(1)
	if math.Abs(rep.Overlap-1) > 1e-12 {
		t.Errorf("Overlap = %g, want 1", rep.Overlap)
	}
}

func TestOverlapNone(t *testing.T) {
	tr := New("a", "b")
	tr.Add(Record{Worker: 0, Size: 1, SendStart: 0, SendEnd: 10, CompStart: 10, CompEnd: 20})
	rep := tr.BuildReport(1)
	if rep.Overlap != 0 {
		t.Errorf("Overlap = %g, want 0", rep.Overlap)
	}
}

func TestOverlapPartial(t *testing.T) {
	tr := New("a", "b")
	// Comm [0,10] and [20,30]; comp [5,25]: covered 5 + 5 of 20.
	tr.Add(Record{Worker: 0, Size: 1, SendStart: 0, SendEnd: 10, CompStart: 5, CompEnd: 25})
	tr.Add(Record{Worker: 1, Size: 1, SendStart: 20, SendEnd: 30, CompStart: 35, CompEnd: 36})
	rep := tr.BuildReport(2)
	if math.Abs(rep.Overlap-0.5) > 1e-12 {
		t.Errorf("Overlap = %g, want 0.5", rep.Overlap)
	}
}

func TestUnionIntervals(t *testing.T) {
	got := unionIntervals([]interval{{5, 8}, {0, 3}, {2, 4}, {8, 9}})
	want := []interval{{0, 4}, {5, 9}}
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("union[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if unionIntervals(nil) != nil {
		t.Error("union of nothing should be nil")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 3 records
		t.Fatalf("%d CSV rows, want 4", len(rows))
	}
	if rows[0][0] != "chunk" || rows[0][4] != "probe" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][4] != "true" || rows[2][4] != "false" {
		t.Error("probe flags wrong in CSV")
	}
	if rows[3][3] != "200" {
		t.Errorf("size column = %q, want 200", rows[3][3])
	}
}

func TestReportString(t *testing.T) {
	rep := sampleTrace().BuildReport(2)
	s := rep.String()
	for _, want := range []string{"umr", "testbed", "2 chunks", "1 probes"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestBuildReportIgnoresOutOfRangeWorkers(t *testing.T) {
	tr := New("a", "b")
	tr.Add(Record{Worker: 7, Size: 10, SendStart: 0, SendEnd: 1, CompStart: 1, CompEnd: 2})
	rep := tr.BuildReport(2) // fewer workers than the record claims
	if rep.Chunks != 1 {
		t.Errorf("chunk not counted")
	}
	// Must not panic, and per-worker arrays stay in range.
	if len(rep.WorkerUtil) != 2 {
		t.Errorf("worker arrays resized to %d", len(rep.WorkerUtil))
	}
}

func TestProbeEndAndAppMakespan(t *testing.T) {
	rep := sampleTrace().BuildReport(2)
	if rep.ProbeEnd != 2 {
		t.Errorf("ProbeEnd = %g, want 2", rep.ProbeEnd)
	}
	if rep.AppMakespan != 28 {
		t.Errorf("AppMakespan = %g, want 30-2", rep.AppMakespan)
	}
	noProbe := New("a", "b")
	noProbe.Add(Record{Worker: 0, Size: 1, SendStart: 0, SendEnd: 1, CompStart: 1, CompEnd: 5})
	r2 := noProbe.BuildReport(1)
	if r2.ProbeEnd != 0 || r2.AppMakespan != 5 {
		t.Errorf("non-probing report: probeEnd=%g appMakespan=%g", r2.ProbeEnd, r2.AppMakespan)
	}
}
