package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Gantt renders the execution as a per-worker text timeline — the visual
// form of the "detailed execution report" that let the paper's authors
// see RUMR dispatching its last large round before the switch condition
// fired. One row per worker; columns are time buckets:
//
//	w00 |pp▒▒▒▒████████████·███████████████████████████ |
//
//	p  probing work        ▒  receiving/buffered (chunk sent, not started)
//	█  computing           ·  idle
//
// Width is the number of time buckets; a bucket shows the dominant state
// within its time span.
func (t *Trace) Gantt(w io.Writer, workers, width int) error {
	if width <= 0 {
		width = 80
	}
	makespan := t.Makespan()
	if makespan <= 0 || workers <= 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	bucket := makespan / float64(width)

	type span struct {
		s, e  float64
		state byte // precedence: compute > buffered > probe
	}
	rows := make([][]span, workers)
	add := func(wk int, s, e float64, state byte) {
		if wk < 0 || wk >= workers || e <= s {
			return
		}
		rows[wk] = append(rows[wk], span{s, e, state})
	}
	for _, r := range t.recs {
		state := byte('C')
		if r.Probe {
			state = 'P'
		}
		add(r.Worker, r.SendEnd, r.CompStart, 'B') // buffered, waiting for CPU
		add(r.Worker, r.CompStart, r.CompEnd, state)
	}

	glyph := map[byte]rune{'C': '█', 'B': '▒', 'P': 'p'}
	precedence := map[byte]int{'C': 3, 'P': 2, 'B': 1}
	for wk := 0; wk < workers; wk++ {
		line := make([]rune, width)
		winner := make([]int, width)
		for i := range line {
			line[i] = '·'
		}
		sort.Slice(rows[wk], func(i, j int) bool { return rows[wk][i].s < rows[wk][j].s })
		for _, sp := range rows[wk] {
			lo := int(sp.s / bucket)
			hi := int(sp.e / bucket)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				if p := precedence[sp.state]; p > winner[i] {
					winner[i] = p
					line[i] = glyph[sp.state]
				}
			}
		}
		if _, err := fmt.Fprintf(w, "w%02d |%s|\n", wk, string(line)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "     0s%s%.0fs  (p probe, ▒ buffered, █ compute, · idle)\n",
		strings.Repeat(" ", maxInt(1, width-11)), makespan)
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
