package trace

import (
	"strings"
	"testing"
)

// TestZeroChunkReport covers the degenerate trace an aborted or
// zero-load run leaves behind: building a report from it must not
// panic, and every derived quantity must come out zero rather than NaN.
func TestZeroChunkReport(t *testing.T) {
	tr := New("umr", "empty")
	rep := tr.BuildReport(4)
	if rep.Makespan != 0 || rep.Chunks != 0 || rep.Probes != 0 {
		t.Errorf("empty trace report not zeroed: %+v", rep)
	}
	if rep.Overlap != 0 {
		t.Errorf("overlap on empty trace = %g, want 0", rep.Overlap)
	}
	for i, u := range rep.WorkerUtil {
		if u != 0 {
			t.Errorf("worker %d util = %g on empty trace", i, u)
		}
	}
	if len(rep.WorkerUtil) != 4 || len(rep.WorkerLoad) != 4 || len(rep.LastChunkSizes) != 4 {
		t.Error("per-worker slices not sized to the platform")
	}
	if s := rep.String(); s == "" {
		t.Error("empty-trace report does not render")
	}
}

// TestZeroChunkReportZeroWorkers pushes both dimensions to zero.
func TestZeroChunkReportZeroWorkers(t *testing.T) {
	rep := New("wf", "none").BuildReport(0)
	if rep.IdleFront != 0 || rep.Makespan != 0 {
		t.Errorf("zero-worker report not zeroed: %+v", rep)
	}
}

// TestGanttSingleWorker renders a one-worker, one-chunk timeline and
// pins its shape: exactly one row plus the axis line, computation
// glyphs inside the row, and stability across repeated renders.
func TestGanttSingleWorker(t *testing.T) {
	tr := New("simple-1", "solo")
	tr.Add(Record{
		Worker: 0, Chunk: 1, Size: 100,
		SendStart: 0, SendEnd: 2,
		CompStart: 2, CompEnd: 10,
	})
	render := func() string {
		var b strings.Builder
		if err := tr.Gantt(&b, 1, 20); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("single-worker gantt has %d lines, want row + axis:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "w00 |") || !strings.Contains(lines[0], "█") {
		t.Errorf("worker row malformed: %q", lines[0])
	}
	if !strings.Contains(lines[1], "10s") {
		t.Errorf("axis does not show the 10s makespan: %q", lines[1])
	}
	if again := render(); again != out {
		t.Error("gantt output not stable across renders")
	}
}

// TestGanttNegativeWorkerRecord asserts records pointing at workers
// outside the platform (e.g. -1 markers) are skipped, not crashed on.
func TestGanttNegativeWorkerRecord(t *testing.T) {
	tr := New("umr", "odd")
	tr.Add(Record{Worker: -1, Chunk: 1, Size: 10, SendStart: 0, SendEnd: 1, CompStart: 1, CompEnd: 5})
	tr.Add(Record{Worker: 7, Chunk: 2, Size: 10, SendStart: 1, SendEnd: 2, CompStart: 2, CompEnd: 6})
	var b strings.Builder
	if err := tr.Gantt(&b, 2, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "w01") {
		t.Error("in-range workers not rendered when out-of-range records present")
	}
}
