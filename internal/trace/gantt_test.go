package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestGanttBasic(t *testing.T) {
	tr := New("umr", "test")
	tr.Add(Record{Worker: 0, Size: 10, SendStart: 0, SendEnd: 10, CompStart: 10, CompEnd: 100, OutputEnd: 100})
	tr.Add(Record{Worker: 1, Size: 10, SendStart: 10, SendEnd: 20, CompStart: 20, CompEnd: 60, OutputEnd: 60})
	var buf bytes.Buffer
	if err := tr.Gantt(&buf, 2, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two workers + legend
		t.Fatalf("gantt:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "w00 |") || !strings.HasPrefix(lines[1], "w01 |") {
		t.Errorf("row labels wrong:\n%s", out)
	}
	if !strings.Contains(lines[0], "█") {
		t.Errorf("worker 0 shows no compute:\n%s", out)
	}
	// Worker 1 idles until t=20 (half the 40-bucket width at makespan
	// 100 → first ~8 buckets idle).
	row1 := lines[1][len("w01 |"):]
	if !strings.HasPrefix(row1, "·") {
		t.Errorf("worker 1 should start idle:\n%s", out)
	}
}

func TestGanttProbeGlyph(t *testing.T) {
	tr := New("umr", "test")
	tr.Add(Record{Worker: 0, Size: 5, Probe: true, SendStart: 0, SendEnd: 1, CompStart: 1, CompEnd: 50})
	tr.Add(Record{Worker: 0, Size: 5, SendStart: 50, SendEnd: 51, CompStart: 60, CompEnd: 100})
	var buf bytes.Buffer
	if err := tr.Gantt(&buf, 1, 50); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "p") {
		t.Errorf("probe glyph missing:\n%s", out)
	}
	if !strings.Contains(out, "▒") {
		t.Errorf("buffered glyph missing (chunk waits 51→60):\n%s", out)
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := New("a", "b").Gantt(&buf, 2, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Errorf("empty trace output: %q", buf.String())
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	tr := New("a", "b")
	tr.Add(Record{Worker: 0, Size: 1, SendStart: 0, SendEnd: 1, CompStart: 1, CompEnd: 2})
	var buf bytes.Buffer
	if err := tr.Gantt(&buf, 1, 0); err != nil {
		t.Fatal(err)
	}
	line := strings.SplitN(buf.String(), "\n", 2)[0]
	if len([]rune(line)) < 80 {
		t.Errorf("default width row too short: %d runes", len([]rune(line)))
	}
}
