// Package trace records what happened during one application execution:
// one record per chunk with its full timeline, from which the report
// derives the metrics the paper discusses — makespan, per-worker
// utilization, communication/computation overlap, and the "detailed
// execution report" that let the authors diagnose RUMR's late switch.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Record is the timeline of one chunk.
type Record struct {
	Chunk  int
	Worker int
	// Offset and Size locate the chunk within the load (load units).
	Offset, Size float64
	// Probe marks calibration chunks from the probing round.
	Probe bool
	// SendStart/SendEnd bracket the transfer on the master uplink;
	// CompStart/CompEnd bracket the computation on the worker.
	SendStart, SendEnd, CompStart, CompEnd float64
	// OutputEnd is when the chunk's output arrived back at the master
	// (equal to CompEnd when the application returns no output).
	OutputEnd float64
	// Attempt is the dispatch attempt this record describes (1-based; 0
	// in records predating the retry layer, which means "first").
	Attempt int
	// Failed marks an abandoned attempt: the timeline holds whatever
	// stages completed before the failure, and OutputEnd the failure
	// time. Failed records are excluded from load/utilization
	// aggregates; the chunk's completing attempt appears separately.
	Failed bool
}

// TransferTime returns the chunk's time on the uplink.
func (r Record) TransferTime() float64 { return r.SendEnd - r.SendStart }

// ComputeTime returns the chunk's time on the worker CPU.
func (r Record) ComputeTime() float64 { return r.CompEnd - r.CompStart }

// Trace accumulates records for one run.
type Trace struct {
	Algorithm string
	Platform  string
	recs      []Record
}

// New returns an empty trace labeled with the algorithm and platform.
func New(algorithm, platform string) *Trace {
	return &Trace{Algorithm: algorithm, Platform: platform}
}

// Reset empties the trace and relabels it, keeping the record buffer's
// capacity so a reused trace accumulates without reallocating.
func (t *Trace) Reset(algorithm, platform string) {
	t.Algorithm, t.Platform = algorithm, platform
	t.recs = t.recs[:0]
}

// Add appends a record.
func (t *Trace) Add(r Record) { t.recs = append(t.recs, r) }

// Records returns the records in completion order.
func (t *Trace) Records() []Record { return t.recs }

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.recs) }

// Makespan returns the time of the last event in the trace (chunk output
// arrival), i.e. the application execution time the paper plots.
func (t *Trace) Makespan() float64 {
	m := 0.0
	for _, r := range t.recs {
		if r.OutputEnd > m {
			m = r.OutputEnd
		}
		if r.CompEnd > m {
			m = r.CompEnd
		}
	}
	return m
}

// Report summarizes a trace.
type Report struct {
	Algorithm string
	Platform  string
	Makespan  float64
	// Chunks is the number of real (non-probe) chunks; Probes counts
	// calibration transfers/executions.
	Chunks, Probes int
	// TotalLoad is the load computed by real chunks.
	TotalLoad float64
	// CommTime is the total uplink busy time; CompTime the summed worker
	// busy time over all real chunks.
	CommTime, CompTime float64
	// Overlap is the fraction of uplink busy time during which at least
	// one worker was computing — UMR's design goal is pushing this
	// toward 1.
	Overlap float64
	// WorkerUtil[i] is worker i's compute busy time divided by the
	// makespan; WorkerLoad[i] the load it computed.
	WorkerUtil []float64
	WorkerLoad []float64
	// IdleFront is the mean per-worker idle time before the first real
	// chunk starts computing (the serialized-distribution stagger).
	IdleFront float64
	// FailedAttempts counts abandoned chunk attempts (retries and
	// permanent losses); RetriedLoad is the load those attempts carried.
	FailedAttempts int
	RetriedLoad    float64
	// ProbeEnd is when the probing round finished (0 for non-probing
	// algorithms); AppMakespan is the makespan net of probing — §3.5's
	// probing is in-band, so both views matter when comparing probing
	// and non-probing algorithms.
	ProbeEnd    float64
	AppMakespan float64
	// LastChunkSizes lists each worker's final chunk size — factoring
	// ends small, UMR ends large; this is the quantity behind the
	// uncertainty-tolerance difference.
	LastChunkSizes []float64
}

// BuildReport derives a Report from the trace for a platform with the
// given number of workers.
func (t *Trace) BuildReport(workers int) Report {
	rep := Report{
		Algorithm:  t.Algorithm,
		Platform:   t.Platform,
		Makespan:   t.Makespan(),
		WorkerUtil: make([]float64, workers),
		WorkerLoad: make([]float64, workers),
	}
	lastSize := make([]float64, workers)
	lastEnd := make([]float64, workers)
	firstComp := make([]float64, workers)
	for i := range firstComp {
		firstComp[i] = -1
	}
	var comm []interval
	var comp []interval
	for _, r := range t.recs {
		if r.Failed {
			// Abandoned attempts never delivered output; counting them
			// would double the chunk's load once the retry completes.
			rep.FailedAttempts++
			rep.RetriedLoad += r.Size
			continue
		}
		if r.Probe {
			rep.Probes++
			if r.CompEnd > rep.ProbeEnd {
				rep.ProbeEnd = r.CompEnd
			}
			if r.SendEnd > rep.ProbeEnd {
				rep.ProbeEnd = r.SendEnd
			}
			continue
		}
		rep.Chunks++
		rep.TotalLoad += r.Size
		rep.CommTime += r.TransferTime()
		rep.CompTime += r.ComputeTime()
		if r.Worker >= 0 && r.Worker < workers {
			rep.WorkerUtil[r.Worker] += r.ComputeTime()
			rep.WorkerLoad[r.Worker] += r.Size
			if r.CompEnd > lastEnd[r.Worker] {
				lastEnd[r.Worker] = r.CompEnd
				lastSize[r.Worker] = r.Size
			}
			if firstComp[r.Worker] < 0 || r.CompStart < firstComp[r.Worker] {
				firstComp[r.Worker] = r.CompStart
			}
		}
		comm = append(comm, interval{r.SendStart, r.SendEnd})
		comp = append(comp, interval{r.CompStart, r.CompEnd})
	}
	if rep.Makespan > 0 {
		for i := range rep.WorkerUtil {
			rep.WorkerUtil[i] /= rep.Makespan
		}
	}
	rep.LastChunkSizes = lastSize
	front := 0.0
	for _, f := range firstComp {
		if f > 0 {
			front += f
		}
	}
	if workers > 0 {
		rep.IdleFront = front / float64(workers)
	}
	rep.Overlap = overlapFraction(comm, comp)
	rep.AppMakespan = rep.Makespan - rep.ProbeEnd
	if rep.AppMakespan < 0 {
		rep.AppMakespan = 0
	}
	return rep
}

// overlapFraction returns the fraction of the union of comm intervals
// covered by the union of comp intervals.
func overlapFraction(comm, comp []interval) float64 {
	commU := unionIntervals(comm)
	compU := unionIntervals(comp)
	total := 0.0
	for _, c := range commU {
		total += c.e - c.s
	}
	if total == 0 {
		return 0
	}
	cov := 0.0
	j := 0
	for _, c := range commU {
		for j < len(compU) && compU[j].e <= c.s {
			j++
		}
		k := j
		for k < len(compU) && compU[k].s < c.e {
			lo := c.s
			if compU[k].s > lo {
				lo = compU[k].s
			}
			hi := c.e
			if compU[k].e < hi {
				hi = compU[k].e
			}
			if hi > lo {
				cov += hi - lo
			}
			k++
		}
	}
	return cov / total
}

type interval struct{ s, e float64 }

// unionIntervals merges overlapping intervals into a sorted disjoint set.
func unionIntervals(in []interval) []interval {
	if len(in) == 0 {
		return nil
	}
	cp := append([]interval(nil), in...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].s < cp[j].s })
	out := cp[:1]
	for _, iv := range cp[1:] {
		last := &out[len(out)-1]
		if iv.s <= last.e {
			if iv.e > last.e {
				last.e = iv.e
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// WriteCSV writes the records as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"chunk", "worker", "offset", "size", "probe",
		"send_start", "send_end", "comp_start", "comp_end", "output_end",
		"attempt", "failed",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for _, r := range t.recs {
		err := cw.Write([]string{
			strconv.Itoa(r.Chunk), strconv.Itoa(r.Worker),
			f(r.Offset), f(r.Size), strconv.FormatBool(r.Probe),
			f(r.SendStart), f(r.SendEnd), f(r.CompStart), f(r.CompEnd), f(r.OutputEnd),
			strconv.Itoa(r.Attempt), strconv.FormatBool(r.Failed),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders a one-line summary.
func (rep Report) String() string {
	return fmt.Sprintf("%s on %s: makespan %.1fs, %d chunks (+%d probes), overlap %.0f%%",
		rep.Algorithm, rep.Platform, rep.Makespan, rep.Chunks, rep.Probes, 100*rep.Overlap)
}
