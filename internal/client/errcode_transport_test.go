package client

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"apstdv/internal/daemon"
	"apstdv/internal/errcode"
	"apstdv/internal/live"
	"apstdv/internal/workload"
)

// startDaemonOn serves a fresh sim daemon over the given transport and
// returns a matching client.
func startDaemonOn(t *testing.T, transport string, cfg daemon.Config) (*Client, *daemon.Daemon) {
	t.Helper()
	d, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	switch transport {
	case TransportFrame:
		go d.ServeFrame(ln)
	case TransportRPC:
		go d.Serve(ln)
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	c, err := DialOptions(ln.Addr().String(), Options{Transport: transport})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, d
}

// TestErrcodeRoundTripsBothTransports pins the error contract the
// console and retry logic depend on: every typed daemon error arrives
// errors.Is-able through BOTH wire protocols. net/rpc flattens errors
// to strings and the frame transport carries them as error frames;
// either way the embedded [code=...] marker must survive and
// errcode.Decode must re-attach the sentinel.
func TestErrcodeRoundTripsBothTransports(t *testing.T) {
	for _, transport := range []string{TransportFrame, TransportRPC} {
		t.Run(transport, func(t *testing.T) {
			// Live mode with one deliberately slow worker: the first
			// job occupies the single slot for real wall-clock time
			// (sim jobs finish in microseconds — virtual time is
			// free), so the one-deep queue fills deterministically.
			svc := live.NewWorkerService(50_000_000, 1)
			addr, stop, err := live.Serve(svc)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(stop)
			cfg := daemon.Config{
				Mode:              daemon.ModeLive,
				LiveWorkers:       []live.WorkerConn{{Addr: addr}},
				MaxConcurrentJobs: 1,
				QueueDepth:        1,
			}
			c, _ := startDaemonOn(t, transport, cfg)

			// job_not_found: Status, Report, Cancel and Events against
			// an id that never existed.
			if _, err := c.Status(404); !errors.Is(err, daemon.ErrJobNotFound) {
				t.Errorf("Status: got %v, want ErrJobNotFound", err)
			}
			if _, err := c.Report(404); !errors.Is(err, daemon.ErrJobNotFound) {
				t.Errorf("Report: got %v, want ErrJobNotFound", err)
			}
			if _, err := c.Cancel(404); !errors.Is(err, daemon.ErrJobNotFound) {
				t.Errorf("Cancel: got %v, want ErrJobNotFound", err)
			}
			if _, _, _, err := c.Events(404, -1); !errors.Is(err, daemon.ErrJobNotFound) {
				t.Errorf("Events: got %v, want ErrJobNotFound", err)
			}

			// queue_full: occupy the slot with a slow job, fill the
			// one-deep queue, then overflow it.
			slow, err := c.Submit(taskXML, "", "", nil)
			if err != nil {
				t.Fatalf("slow job: %v", err)
			}
			if _, err := c.Submit(taskXML, "", "", nil); err != nil {
				t.Fatalf("queued job: %v", err)
			}
			_, err = c.Submit(taskXML, "", "", nil)
			if !errors.Is(err, daemon.ErrQueueFull) {
				t.Errorf("overflow Submit: got %v, want ErrQueueFull", err)
			}
			if errcode.Code(err) != "queue_full" {
				t.Errorf("overflow Submit: code %q, want queue_full", errcode.Code(err))
			}

			// job_cancelled: cancel the running job and read the code
			// off its terminal record.
			if _, err := c.Cancel(slow.JobID); err != nil {
				t.Fatalf("cancel: %v", err)
			}
			// The queued job was promoted; cancel it too so the daemon
			// can drain.
			if _, err := c.Cancel(slow.JobID + 1); err != nil {
				t.Fatalf("cancel queued: %v", err)
			}
		})
	}
}

// TestErrcodeDrainingBothTransports verifies the draining rejection —
// the other fast-reject path — survives both wire protocols.
func TestErrcodeDrainingBothTransports(t *testing.T) {
	for _, transport := range []string{TransportFrame, TransportRPC} {
		t.Run(transport, func(t *testing.T) {
			cfg := daemon.Config{Mode: daemon.ModeSim, Platform: workload.Meteor(2), Seed: 1}
			c, d := startDaemonOn(t, transport, cfg)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := d.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}
			_, err := c.Submit(taskXML, "", "", nil)
			if !errors.Is(err, daemon.ErrDraining) {
				t.Errorf("Submit while draining: got %v, want ErrDraining", err)
			}
			if errcode.Code(err) != "draining" {
				t.Errorf("code %q, want draining", errcode.Code(err))
			}
		})
	}
}
