package client

import (
	"context"
	"net"
	"testing"
	"time"

	"apstdv/internal/daemon"
	"apstdv/internal/workload"
)

// waitDone adapts the context-based WaitDone to the timeout style the
// tests use.
func waitDone(c *Client, jobID int, timeout, poll time.Duration) (daemon.Job, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.WaitDone(ctx, jobID, poll)
}

const taskXML = `<task executable="app" input="big">
 <divisibility input="big" method="callback" load="200" callback="cb" algorithm="simple-1"/>
</task>`

func startDaemon(t *testing.T) *Client {
	t.Helper()
	d, err := daemon.New(daemon.Config{
		Mode:     daemon.ModeSim,
		Platform: workload.Meteor(2),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go d.ServeFrame(ln)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to a closed port succeeded")
	}
}

func TestSubmitStatusReportFlow(t *testing.T) {
	c := startDaemon(t)
	reply, err := c.Submit(taskXML, "", "", &daemon.SimApp{UnitCost: 0.05, BytesPerUnit: 100})
	if err != nil {
		t.Fatal(err)
	}
	job, err := waitDone(c, reply.JobID, 5*time.Second, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != daemon.JobDone {
		t.Fatalf("job %s: %s", job.State, job.Err)
	}
	rep, err := c.Report(reply.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary == "" || rep.CSV == "" || rep.Gantt == "" {
		t.Error("report incomplete")
	}
	jobs, err := c.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != reply.JobID {
		t.Errorf("jobs list: %v", jobs)
	}
	names, err := c.Algorithms()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 5 {
		t.Errorf("algorithm list too short: %v", names)
	}
}

func TestWaitDoneTimeout(t *testing.T) {
	c := startDaemon(t)
	// Job 999 does not exist: WaitDone must surface the RPC error.
	if _, err := waitDone(c, 999, 100*time.Millisecond, 10*time.Millisecond); err == nil {
		t.Error("WaitDone on unknown job succeeded")
	}
}

func TestStatusErrorPropagates(t *testing.T) {
	c := startDaemon(t)
	if _, err := c.Status(42); err == nil {
		t.Error("status of unknown job succeeded")
	}
	if _, err := c.Report(42); err == nil {
		t.Error("report of unknown job succeeded")
	}
}
