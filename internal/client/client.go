// Package client is the library behind the APST-DV console (cmd/apstdv):
// a thin, typed wrapper around the daemon's serving interface.
//
// Two transports speak the same protocol: the frame transport (default;
// see internal/transport) and the legacy net/rpc fallback. Every call
// decodes transported errors with errcode.Decode, so the daemon's typed
// sentinels (daemon.ErrQueueFull, daemon.ErrJobNotFound, ...) survive
// either transport and errors.Is works on this side.
package client

import (
	"context"
	"errors"
	"fmt"
	"net/rpc"
	"sync"
	"time"

	"apstdv/internal/daemon"
	"apstdv/internal/errcode"
	"apstdv/internal/obs"
	otrace "apstdv/internal/obs/trace"
	"apstdv/internal/transport"
)

// Transport names accepted by Options.Transport and the cmd -transport
// flags.
const (
	TransportFrame = "frame"
	TransportRPC   = "rpc"
)

// Options configures a connection. The zero value means the frame
// transport with the package defaults.
type Options struct {
	// Transport selects TransportFrame (default) or TransportRPC.
	Transport string
	// Conns is the frame connection pool size (default 1; the frame
	// transport multiplexes, so one connection carries many calls).
	Conns int
	// Window bounds in-flight calls per frame connection (default
	// transport.DefaultWindow). Ignored for rpc.
	Window int
	// Metrics, when set, receives client-side transport counters.
	// Ignored for rpc.
	Metrics *obs.TransportMetrics
	// Tracer, when set, makes Submit mint a trace id and record a
	// "client.submit" span locally; the id rides to the daemon in the
	// frame header (frame transport) or the SubmitArgs themselves
	// (rpc), so one trace stitches client, daemon, engine and workers.
	Tracer *otrace.Collector
}

func (o Options) withDefaults() (Options, error) {
	switch o.Transport {
	case "":
		o.Transport = TransportFrame
	case TransportFrame, TransportRPC:
	default:
		return o, fmt.Errorf("client: unknown transport %q (want %s or %s)",
			o.Transport, TransportFrame, TransportRPC)
	}
	if o.Conns <= 0 {
		o.Conns = 1
	}
	return o, nil
}

// caller is the transport seam: one implementation per wire protocol,
// both mapping net/rpc-style method names onto their encoding. tc is
// the request's trace context: the frame transport carries it in the
// frame header; rpc drops it (traced args carry the ids in-band).
type caller interface {
	Call(method string, args, reply any, tc transport.TraceContext) error
	Close() error
}

// rpcCaller speaks classic net/rpc.
type rpcCaller struct{ rc *rpc.Client }

func (r *rpcCaller) Call(method string, args, reply any, _ transport.TraceContext) error {
	return r.rc.Call(method, args, reply)
}
func (r *rpcCaller) Close() error { return r.rc.Close() }

// frameCaller speaks the frame transport through a self-healing
// connection pool.
type frameCaller struct{ pool *transport.Pool }

func (f *frameCaller) Call(method string, args, reply any, tc transport.TraceContext) error {
	id, ok := daemon.FrameMethods[method]
	if !ok {
		return fmt.Errorf("client: no frame method id for %q", method)
	}
	a, _ := args.(transport.Appender)
	r, _ := reply.(transport.Decoder)
	return f.pool.CallTrace(id, a, r, tc)
}
func (f *frameCaller) Close() error { return f.pool.Close() }

// Client talks to one daemon.
type Client struct {
	addr string
	opts Options

	mu sync.Mutex
	c  caller
}

// Dial connects to a daemon at addr (host:port) over the frame
// transport.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects with explicit transport options.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Client{addr: addr, opts: opts}
	cl, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.c = cl
	return c, nil
}

func (c *Client) dial() (caller, error) {
	if c.opts.Transport == TransportRPC {
		rc, err := rpc.Dial("tcp", c.addr)
		if err != nil {
			return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
		}
		return &rpcCaller{rc: rc}, nil
	}
	// Pool construction is lazy; the probe call below in redial (and
	// the first real call here) surfaces dial errors. Probe eagerly so
	// Dial keeps its connect-or-error contract.
	p := transport.NewPool(c.addr, c.opts.Conns, transport.Config{
		Window: c.opts.Window, Metrics: c.opts.Metrics,
	})
	fc := &frameCaller{pool: p}
	var reply daemon.AlgorithmsReply
	if err := fc.Call("APSTDV.Algorithms", &daemon.AlgorithmsArgs{}, &reply, transport.TraceContext{}); err != nil {
		p.Close()
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	return fc, nil
}

// Close releases the connection. Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	cl := c.c
	c.mu.Unlock()
	if cl == nil {
		return nil
	}
	return cl.Close()
}

func (c *Client) caller() caller {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c
}

// redial replaces a dead connection, keeping concurrent callers on one
// shared replacement: only the caller holding the broken conn swaps.
// The frame pool redials internally, so redial there is a no-op.
func (c *Client) redial(broken caller) error {
	if c.opts.Transport == TransportFrame {
		return nil
	}
	c.mu.Lock()
	if c.c != broken {
		c.mu.Unlock()
		return nil // someone else already replaced it
	}
	c.mu.Unlock()
	fresh, err := c.dial()
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.c != broken {
		// Lost the race; discard ours.
		c.mu.Unlock()
		fresh.Close()
		return nil
	}
	c.c = fresh
	c.mu.Unlock()
	broken.Close()
	return nil
}

// call performs one RPC, re-attaching registered error sentinels to the
// string the transport flattened the server error into.
func (c *Client) call(method string, args, reply any) error {
	return c.callTrace(method, args, reply, transport.TraceContext{})
}

// callTrace is call with an explicit trace context on the wire.
func (c *Client) callTrace(method string, args, reply any, tc transport.TraceContext) error {
	return errcode.Decode(c.caller().Call(method, args, reply, tc))
}

// transient reports whether err is a connection-level failure worth a
// reconnect: the server never answered. A handler answer — an rpc
// ServerError, a frame error response, anything carrying an errcode
// marker — is authoritative and not transient.
func transient(err error) bool {
	if err == nil {
		return false
	}
	var se rpc.ServerError
	if errors.As(err, &se) {
		return false
	}
	if transport.IsRemote(err) {
		return false
	}
	return errcode.Code(err) == ""
}

// Submit sends a task specification. algorithm (optional) overrides the
// spec's algorithm attribute; priority is the admission class (high,
// normal or low; empty = normal); simApp supplies sim-mode ground
// truth. A full queue rejects with daemon.ErrQueueFull.
func (c *Client) Submit(taskXML, algorithm, priority string, simApp *daemon.SimApp) (daemon.SubmitReply, error) {
	args := &daemon.SubmitArgs{
		TaskXML: taskXML, Algorithm: algorithm, Priority: priority, SimApp: simApp,
	}
	// With a tracer, mint the trace here so the daemon's spans parent
	// under the client's view of the submit. The ids travel both in the
	// args (rpc's only channel) and the frame header (which also lets
	// the transport server attribute its decode work to the trace).
	var tc transport.TraceContext
	var sp otrace.Span
	if tr := c.opts.Tracer; tr != nil {
		tid := tr.NewTraceID()
		sp = tr.Begin(tid, 0, "client.submit")
		args.TraceID = uint64(tid)
		args.ParentSpan = uint64(sp.ID())
		tc = transport.TraceContext{Trace: args.TraceID, Span: args.ParentSpan}
	}
	var reply daemon.SubmitReply
	err := c.callTrace("APSTDV.Submit", args, &reply, tc)
	sp.End(err)
	return reply, err
}

// Status fetches a job's state.
func (c *Client) Status(jobID int) (daemon.Job, error) {
	var reply daemon.StatusReply
	err := c.call("APSTDV.Status", &daemon.StatusArgs{JobID: jobID}, &reply)
	return reply.Job, err
}

// Cancel requests cancellation of a queued or running job and returns
// the job's state as of the request (a running job unwinds
// asynchronously; poll Status or WaitDone for the terminal state).
func (c *Client) Cancel(jobID int) (daemon.JobState, error) {
	var reply daemon.CancelReply
	err := c.call("APSTDV.Cancel", &daemon.CancelArgs{JobID: jobID}, &reply)
	return reply.State, err
}

// Report fetches a finished job's execution report.
func (c *Client) Report(jobID int) (daemon.ReportReply, error) {
	var reply daemon.ReportReply
	err := c.call("APSTDV.Report", &daemon.ReportArgs{JobID: jobID}, &reply)
	return reply, err
}

// Algorithms lists the scheduler names the daemon accepts.
func (c *Client) Algorithms() ([]string, error) {
	var reply daemon.AlgorithmsReply
	err := c.call("APSTDV.Algorithms", &daemon.AlgorithmsArgs{}, &reply)
	return reply.Names, err
}

// Jobs lists all jobs.
func (c *Client) Jobs() ([]daemon.Job, error) {
	reply, err := c.ListJobs()
	return reply.Jobs, err
}

// ListJobs returns the full job listing reply, including the daemon's
// co-scheduling policy alongside the job summaries.
func (c *Client) ListJobs() (daemon.ListJobsReply, error) {
	var reply daemon.ListJobsReply
	err := c.call("APSTDV.ListJobs", &daemon.ListJobsArgs{}, &reply)
	return reply, err
}

// Trace fetches a job's retained span tree from the daemon. Fails with
// daemon.ErrTracingOff when the daemon runs without a collector.
func (c *Client) Trace(jobID int) (daemon.TraceReply, error) {
	var reply daemon.TraceReply
	err := c.call("APSTDV.Trace", &daemon.TraceArgs{JobID: jobID}, &reply)
	return reply, err
}

// TraceStats fetches the daemon's per-stage latency aggregates.
func (c *Client) TraceStats() (daemon.TraceStatsReply, error) {
	var reply daemon.TraceStatsReply
	err := c.call("APSTDV.TraceStats", &daemon.TraceStatsArgs{}, &reply)
	return reply, err
}

// Events fetches the tail of a job's event stream: retained events with
// Seq > afterSeq, the job's current state, and whether the ring dropped
// events the cursor missed.
func (c *Client) Events(jobID int, afterSeq int64) ([]obs.Event, daemon.JobState, bool, error) {
	var reply daemon.EventsReply
	err := c.call("APSTDV.Events", &daemon.EventsArgs{JobID: jobID, AfterSeq: afterSeq}, &reply)
	return reply.Events, reply.State, reply.Dropped, err
}

// active reports whether a job can still make progress.
func active(state daemon.JobState) bool {
	return state == daemon.JobRunning || state == daemon.JobQueued
}

// Reconnect backoff for FollowEvents: exponential from followBackoffMin
// capped at followBackoffMax.
const (
	followBackoffMin = 100 * time.Millisecond
	followBackoffMax = 5 * time.Second
)

// FollowEvents polls the job's event stream from the beginning, calling
// fn for every event in seq order, until the job reaches a terminal
// state and the stream is drained, or ctx is cancelled (the context
// error is returned).
//
// Transient connection failures — daemon restart, dropped conn — do not
// end the follow: the client reconnects with capped exponential backoff
// and resumes from its cursor, so the caller sees a gap only if the
// ring evicted events meanwhile. Server-side errors (unknown job, and
// any other answer the daemon actually produced) return immediately.
func (c *Client) FollowEvents(ctx context.Context, jobID int, poll time.Duration, fn func(obs.Event)) error {
	return c.FollowEventsFrom(ctx, jobID, -1, poll, fn)
}

// FollowEventsFrom is FollowEvents starting after a known sequence
// number instead of the beginning: events with Seq <= afterSeq are
// never redelivered. It is the resume primitive for callers that
// outlive a connection (apstdv events -follow restarts here with its
// last seen seq, so a daemon reconnect does not replay the ring).
func (c *Client) FollowEventsFrom(ctx context.Context, jobID int, afterSeq int64, poll time.Duration, fn func(obs.Event)) error {
	after := afterSeq
	backoff := followBackoffMin
	for {
		cl := c.caller()
		var reply daemon.EventsReply
		err := errcode.Decode(cl.Call("APSTDV.Events",
			&daemon.EventsArgs{JobID: jobID, AfterSeq: after}, &reply, transport.TraceContext{}))
		switch {
		case err == nil:
			backoff = followBackoffMin
			for _, ev := range reply.Events {
				fn(ev)
				after = ev.Seq
			}
			if !active(reply.State) && len(reply.Events) == 0 {
				return nil
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("client: following job %d events: %w", jobID, context.Cause(ctx))
			case <-time.After(poll):
			}
		case transient(err):
			select {
			case <-ctx.Done():
				return fmt.Errorf("client: following job %d events: %w", jobID, context.Cause(ctx))
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > followBackoffMax {
				backoff = followBackoffMax
			}
			c.redial(cl) // best-effort; the next Call reports failures
		default:
			return err
		}
	}
}

// WaitDone polls until the job reaches a terminal state (done, failed,
// cancelled or rejected) or ctx is cancelled, in which case the last
// observed job snapshot and the context error are returned.
func (c *Client) WaitDone(ctx context.Context, jobID int, poll time.Duration) (daemon.Job, error) {
	for {
		job, err := c.Status(jobID)
		if err != nil {
			return job, err
		}
		if !active(job.State) {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, fmt.Errorf("client: job %d still %s: %w", jobID, job.State, context.Cause(ctx))
		case <-time.After(poll):
		}
	}
}
