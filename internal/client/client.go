// Package client is the library behind the APST-DV console (cmd/apstdv):
// a thin, typed wrapper around the daemon's net/rpc interface.
package client

import (
	"fmt"
	"net/rpc"
	"time"

	"apstdv/internal/daemon"
	"apstdv/internal/obs"
)

// Client talks to one daemon.
type Client struct {
	rc *rpc.Client
}

// Dial connects to a daemon at addr (host:port).
func Dial(addr string) (*Client, error) {
	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Client{rc: rc}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.rc.Close() }

// Submit sends a task specification; algorithm (optional) overrides the
// spec's algorithm attribute; simApp supplies sim-mode ground truth.
func (c *Client) Submit(taskXML, algorithm string, simApp *daemon.SimApp) (daemon.SubmitReply, error) {
	var reply daemon.SubmitReply
	err := c.rc.Call("APSTDV.Submit", daemon.SubmitArgs{
		TaskXML: taskXML, Algorithm: algorithm, SimApp: simApp,
	}, &reply)
	return reply, err
}

// Status fetches a job's state.
func (c *Client) Status(jobID int) (daemon.Job, error) {
	var reply daemon.StatusReply
	err := c.rc.Call("APSTDV.Status", daemon.StatusArgs{JobID: jobID}, &reply)
	return reply.Job, err
}

// Report fetches a finished job's execution report.
func (c *Client) Report(jobID int) (daemon.ReportReply, error) {
	var reply daemon.ReportReply
	err := c.rc.Call("APSTDV.Report", daemon.ReportArgs{JobID: jobID}, &reply)
	return reply, err
}

// Algorithms lists the scheduler names the daemon accepts.
func (c *Client) Algorithms() ([]string, error) {
	var reply daemon.AlgorithmsReply
	err := c.rc.Call("APSTDV.Algorithms", daemon.AlgorithmsArgs{}, &reply)
	return reply.Names, err
}

// Jobs lists all jobs.
func (c *Client) Jobs() ([]daemon.Job, error) {
	var reply daemon.ListJobsReply
	err := c.rc.Call("APSTDV.ListJobs", daemon.ListJobsArgs{}, &reply)
	return reply.Jobs, err
}

// Events fetches the tail of a job's event stream: retained events with
// Seq > afterSeq, the job's current state, and whether the ring dropped
// events the cursor missed.
func (c *Client) Events(jobID int, afterSeq int64) ([]obs.Event, daemon.JobState, bool, error) {
	var reply daemon.EventsReply
	err := c.rc.Call("APSTDV.Events", daemon.EventsArgs{JobID: jobID, AfterSeq: afterSeq}, &reply)
	return reply.Events, reply.State, reply.Dropped, err
}

// FollowEvents polls the job's event stream from the beginning, calling
// fn for every event in (run, seq) order, until the job finishes and
// the stream is drained or the timeout elapses.
func (c *Client) FollowEvents(jobID int, timeout, poll time.Duration, fn func(obs.Event)) error {
	deadline := time.Now().Add(timeout)
	after := int64(-1)
	for {
		evs, state, _, err := c.Events(jobID, after)
		if err != nil {
			return err
		}
		for _, ev := range evs {
			fn(ev)
			after = ev.Seq
		}
		if state != daemon.JobRunning && len(evs) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("client: job %d events still streaming after %v", jobID, timeout)
		}
		time.Sleep(poll)
	}
}

// WaitDone polls until the job leaves the running state or the timeout
// elapses.
func (c *Client) WaitDone(jobID int, timeout, poll time.Duration) (daemon.Job, error) {
	deadline := time.Now().Add(timeout)
	for {
		job, err := c.Status(jobID)
		if err != nil {
			return job, err
		}
		if job.State != daemon.JobRunning {
			return job, nil
		}
		if time.Now().After(deadline) {
			return job, fmt.Errorf("client: job %d still running after %v", jobID, timeout)
		}
		time.Sleep(poll)
	}
}
