// Package client is the library behind the APST-DV console (cmd/apstdv):
// a thin, typed wrapper around the daemon's net/rpc interface.
//
// Every call decodes transported errors with errcode.Decode, so the
// daemon's typed sentinels (daemon.ErrQueueFull, daemon.ErrJobNotFound,
// ...) survive the RPC boundary and errors.Is works on this side.
package client

import (
	"context"
	"fmt"
	"net/rpc"
	"time"

	"apstdv/internal/daemon"
	"apstdv/internal/errcode"
	"apstdv/internal/obs"
)

// Client talks to one daemon.
type Client struct {
	rc *rpc.Client
}

// Dial connects to a daemon at addr (host:port).
func Dial(addr string) (*Client, error) {
	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Client{rc: rc}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.rc.Close() }

// call performs one RPC, re-attaching registered error sentinels to the
// string the transport flattened the server error into.
func (c *Client) call(method string, args, reply any) error {
	return errcode.Decode(c.rc.Call(method, args, reply))
}

// Submit sends a task specification. algorithm (optional) overrides the
// spec's algorithm attribute; priority is the admission class (high,
// normal or low; empty = normal); simApp supplies sim-mode ground
// truth. A full queue rejects with daemon.ErrQueueFull.
func (c *Client) Submit(taskXML, algorithm, priority string, simApp *daemon.SimApp) (daemon.SubmitReply, error) {
	var reply daemon.SubmitReply
	err := c.call("APSTDV.Submit", daemon.SubmitArgs{
		TaskXML: taskXML, Algorithm: algorithm, Priority: priority, SimApp: simApp,
	}, &reply)
	return reply, err
}

// Status fetches a job's state.
func (c *Client) Status(jobID int) (daemon.Job, error) {
	var reply daemon.StatusReply
	err := c.call("APSTDV.Status", daemon.StatusArgs{JobID: jobID}, &reply)
	return reply.Job, err
}

// Cancel requests cancellation of a queued or running job and returns
// the job's state as of the request (a running job unwinds
// asynchronously; poll Status or WaitDone for the terminal state).
func (c *Client) Cancel(jobID int) (daemon.JobState, error) {
	var reply daemon.CancelReply
	err := c.call("APSTDV.Cancel", daemon.CancelArgs{JobID: jobID}, &reply)
	return reply.State, err
}

// Report fetches a finished job's execution report.
func (c *Client) Report(jobID int) (daemon.ReportReply, error) {
	var reply daemon.ReportReply
	err := c.call("APSTDV.Report", daemon.ReportArgs{JobID: jobID}, &reply)
	return reply, err
}

// Algorithms lists the scheduler names the daemon accepts.
func (c *Client) Algorithms() ([]string, error) {
	var reply daemon.AlgorithmsReply
	err := c.call("APSTDV.Algorithms", daemon.AlgorithmsArgs{}, &reply)
	return reply.Names, err
}

// Jobs lists all jobs.
func (c *Client) Jobs() ([]daemon.Job, error) {
	var reply daemon.ListJobsReply
	err := c.call("APSTDV.ListJobs", daemon.ListJobsArgs{}, &reply)
	return reply.Jobs, err
}

// Events fetches the tail of a job's event stream: retained events with
// Seq > afterSeq, the job's current state, and whether the ring dropped
// events the cursor missed.
func (c *Client) Events(jobID int, afterSeq int64) ([]obs.Event, daemon.JobState, bool, error) {
	var reply daemon.EventsReply
	err := c.call("APSTDV.Events", daemon.EventsArgs{JobID: jobID, AfterSeq: afterSeq}, &reply)
	return reply.Events, reply.State, reply.Dropped, err
}

// active reports whether a job can still make progress.
func active(state daemon.JobState) bool {
	return state == daemon.JobRunning || state == daemon.JobQueued
}

// FollowEvents polls the job's event stream from the beginning, calling
// fn for every event in seq order, until the job reaches a terminal
// state and the stream is drained, or ctx is cancelled (the context
// error is returned).
func (c *Client) FollowEvents(ctx context.Context, jobID int, poll time.Duration, fn func(obs.Event)) error {
	after := int64(-1)
	for {
		evs, state, _, err := c.Events(jobID, after)
		if err != nil {
			return err
		}
		for _, ev := range evs {
			fn(ev)
			after = ev.Seq
		}
		if !active(state) && len(evs) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("client: following job %d events: %w", jobID, context.Cause(ctx))
		case <-time.After(poll):
		}
	}
}

// WaitDone polls until the job reaches a terminal state (done, failed,
// cancelled or rejected) or ctx is cancelled, in which case the last
// observed job snapshot and the context error are returned.
func (c *Client) WaitDone(ctx context.Context, jobID int, poll time.Duration) (daemon.Job, error) {
	for {
		job, err := c.Status(jobID)
		if err != nil {
			return job, err
		}
		if !active(job.State) {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, fmt.Errorf("client: job %d still %s: %w", jobID, job.State, context.Cause(ctx))
		case <-time.After(poll):
		}
	}
}
