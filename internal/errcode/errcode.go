// Package errcode gives sentinel errors a stable machine-readable code
// that survives string-only transports. net/rpc flattens a server-side
// error to its message (rpc.ServerError is just a string), so a client
// cannot use errors.Is against the server's sentinels directly. A coded
// sentinel embeds " [code=X]" in its message; Decode on the receiving
// side recognizes the marker and re-attaches the registered sentinel,
// making errors.Is work across the wire:
//
//	// server
//	var ErrQueueFull = errcode.New("queue_full", "daemon: run queue full")
//	return fmt.Errorf("job %d: %w", id, ErrQueueFull)
//
//	// client
//	err := errcode.Decode(rc.Call(...))
//	errors.Is(err, daemon.ErrQueueFull) // true
//
// Codes are registered process-wide by New; both ends of an RPC link in
// the same binary (the common test setup) or split binaries built from
// the same tree share the table.
package errcode

import (
	"strings"
	"sync"
)

// Error is a sentinel with a stable code. Construct with New.
type Error struct {
	code string
	msg  string
}

// Error implements error; the code marker is part of the message so it
// rides any %w / %v formatting and any transport that keeps the string.
func (e *Error) Error() string { return e.msg + " [code=" + e.code + "]" }

// Code returns the sentinel's stable code.
func (e *Error) Code() string { return e.code }

var (
	mu       sync.Mutex
	registry = map[string]*Error{}
)

// New registers a coded sentinel. The code is a short stable token
// ([a-z0-9_]); registering the same code twice panics — codes are a
// global contract, like metric names.
func New(code, msg string) *Error {
	if code == "" || strings.ContainsAny(code, " []=") {
		panic("errcode: invalid code " + code)
	}
	e := &Error{code: code, msg: msg}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[code]; dup {
		panic("errcode: duplicate code " + code)
	}
	registry[code] = e
	return e
}

// lookup returns the registered sentinel for code, or nil.
func lookup(code string) *Error {
	mu.Lock()
	defer mu.Unlock()
	return registry[code]
}

// Code extracts the first code marker embedded in err's message, or ""
// when there is none. It works on any error, including one that crossed
// a string-only transport.
func Code(err error) string {
	if err == nil {
		return ""
	}
	return parseCode(err.Error())
}

func parseCode(s string) string {
	i := strings.Index(s, "[code=")
	if i < 0 {
		return ""
	}
	rest := s[i+len("[code="):]
	j := strings.IndexByte(rest, ']')
	if j < 0 {
		return ""
	}
	return rest[:j]
}

// remote is a decoded transported error: the full message as received,
// unwrapping to the registered sentinel so errors.Is matches.
type remote struct {
	msg      string
	sentinel error
}

func (r *remote) Error() string { return r.msg }
func (r *remote) Unwrap() error { return r.sentinel }

// Decode re-attaches the registered sentinel to an error that crossed a
// string-only transport: if err's message embeds a known code marker,
// the result wraps the matching sentinel (message preserved verbatim).
// Errors without a marker — or with an unregistered code — pass through
// unchanged, as does nil.
func Decode(err error) error {
	if err == nil {
		return nil
	}
	code := parseCode(err.Error())
	if code == "" {
		return err
	}
	sent := lookup(code)
	if sent == nil {
		return err
	}
	return &remote{msg: err.Error(), sentinel: sent}
}
