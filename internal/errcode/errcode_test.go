package errcode

import (
	"errors"
	"fmt"
	"net/rpc"
	"testing"
)

var (
	errTestFull    = New("test_full", "test: queue full")
	errTestMissing = New("test_missing", "test: not found")
	errTestUnused  = New("test_unused", "test: never sent")
)

func TestCodeEmbeddedInMessage(t *testing.T) {
	if got := errTestFull.Error(); got != "test: queue full [code=test_full]" {
		t.Errorf("message %q", got)
	}
	if Code(errTestFull) != "test_full" {
		t.Errorf("Code = %q", Code(errTestFull))
	}
	if Code(errors.New("plain")) != "" {
		t.Error("plain error produced a code")
	}
	if Code(nil) != "" {
		t.Error("nil error produced a code")
	}
}

func TestCodeSurvivesWrapping(t *testing.T) {
	wrapped := fmt.Errorf("job 7: %w", errTestFull)
	if Code(wrapped) != "test_full" {
		t.Errorf("wrapped code = %q", Code(wrapped))
	}
}

func TestDecodeAcrossStringTransport(t *testing.T) {
	// net/rpc delivers server errors as rpc.ServerError — a bare string.
	wire := rpc.ServerError(fmt.Errorf("job 7: %w", errTestFull).Error())
	dec := Decode(wire)
	if !errors.Is(dec, errTestFull) {
		t.Errorf("errors.Is failed after transport: %v", dec)
	}
	if errors.Is(dec, errTestMissing) {
		t.Error("decoded error matches the wrong sentinel")
	}
	if dec.Error() != wire.Error() {
		t.Errorf("message changed: %q -> %q", wire.Error(), dec.Error())
	}
}

func TestDecodePassThrough(t *testing.T) {
	if Decode(nil) != nil {
		t.Error("Decode(nil) != nil")
	}
	plain := errors.New("no marker here")
	if Decode(plain) != plain {
		t.Error("unmarked error did not pass through")
	}
	unknown := errors.New("boom [code=nobody_registered_this]")
	if Decode(unknown) != unknown {
		t.Error("unregistered code did not pass through")
	}
}

func TestDuplicateCodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate code did not panic")
		}
	}()
	New("test_full", "dup")
}

func TestDecodeKeepsLocalWrapChains(t *testing.T) {
	// Same-process errors (no transport) already work with errors.Is;
	// Decode must not break that.
	err := fmt.Errorf("context: %w", errTestUnused)
	if !errors.Is(Decode(err), errTestUnused) {
		t.Error("Decode broke a local wrap chain")
	}
}
