package live

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestSharePoolSetReleaseAccounting(t *testing.T) {
	p := NewSharePool(4)
	if err := p.Set(1, []float64{1, 1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := p.Set(2, []float64{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if got := p.FreeWorkers(); got != 0 {
		t.Fatalf("free workers = %d, want 0", got)
	}
	// Revision: both jobs move to half shares everywhere. The mass
	// crosses between workers, so it must commit as one atomic
	// transition — sequential Sets would transiently oversubscribe.
	half := []float64{0.5, 0.5, 0.5, 0.5}
	if err := p.Set(1, half); !errors.Is(err, ErrShareOversubscribed) {
		t.Fatalf("sequential crossing revision err = %v, want ErrShareOversubscribed", err)
	}
	if err := p.SetAll(map[int][]float64{1: half, 2: half}); err != nil {
		t.Fatal(err)
	}
	for w, tot := range p.Occupancy() {
		if tot < 1-1e-9 || tot > 1+1e-9 {
			t.Fatalf("worker %d occupancy = %g, want 1.0", w, tot)
		}
	}
	if err := p.Release(1); err != nil {
		t.Fatal(err)
	}
	if got := p.Shares(1); got != nil {
		t.Fatalf("released job still holds %v", got)
	}
	if got := p.Shares(2); len(got) != 4 || got[0] != 0.5 {
		t.Fatalf("survivor shares = %v, want [0.5 0.5 0.5 0.5]", got)
	}
}

func TestSharePoolOversubscriptionTypedError(t *testing.T) {
	p := NewSharePool(2)
	if err := p.Set(1, []float64{0.7, 0.2}); err != nil {
		t.Fatal(err)
	}
	err := p.Set(2, []float64{0.4, 0.1})
	if !errors.Is(err, ErrShareOversubscribed) {
		t.Fatalf("oversubscription err = %v, want ErrShareOversubscribed", err)
	}
	// The rejected revision must not have moved any accounting.
	if got := p.Occupancy(); got[0] != 0.7 || got[1] != 0.2 {
		t.Fatalf("occupancy after rejected set = %v, want [0.7 0.2]", got)
	}
	if got := p.Shares(2); got != nil {
		t.Fatalf("rejected job holds %v, want nothing", got)
	}
	// A revision of an existing holder is judged against its own old
	// vector, so a job may move its full share between workers.
	if err := p.Set(1, []float64{0.2, 0.7}); err != nil {
		t.Fatalf("self-revision rejected: %v", err)
	}
}

func TestSharePoolDoubleReleaseTypedError(t *testing.T) {
	p := NewSharePool(2)
	if err := p.Set(7, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(7); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(7); !errors.Is(err, ErrShareNotHeld) {
		t.Fatalf("double release err = %v, want ErrShareNotHeld", err)
	}
}

// TestSharePoolConcurrentRevision races acquire/revise/release across
// jobs under the race detector and asserts the invariant the pool
// exists to enforce: at every observation point, no worker's shares
// sum above 1.0.
func TestSharePoolConcurrentRevision(t *testing.T) {
	const (
		workers = 5
		jobs    = 8
		rounds  = 200
	)
	p := NewSharePool(workers)
	var jobWG, obsWG sync.WaitGroup
	stop := make(chan struct{})
	// Observer: the invariant must hold at arbitrary interleavings, not
	// just at quiescence.
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for w, tot := range p.Occupancy() {
				if tot > 1+1e-6 {
					t.Errorf("worker %d oversubscribed at %.6f", w, tot)
					return
				}
			}
		}
	}()
	for j := 0; j < jobs; j++ {
		jobWG.Add(1)
		go func(id int) {
			defer jobWG.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			held := false
			for r := 0; r < rounds; r++ {
				vec := make([]float64, workers)
				for w := range vec {
					vec[w] = rng.Float64() / jobs // sums stay ≤ 1 across jobs
				}
				switch {
				case !held:
					if err := p.Set(id, vec); err != nil {
						t.Errorf("job %d set: %v", id, err)
						return
					}
					held = true
				case rng.Intn(3) == 0:
					if err := p.Release(id); err != nil {
						t.Errorf("job %d release: %v", id, err)
						return
					}
					held = false
				default:
					if err := p.Set(id, vec); err != nil {
						t.Errorf("job %d revise: %v", id, err)
						return
					}
				}
			}
			if held {
				if err := p.Release(id); err != nil {
					t.Errorf("job %d final release: %v", id, err)
				}
			}
		}(j)
	}
	jobWG.Wait()
	close(stop)
	obsWG.Wait()
	if got := p.Holders(); got != 0 {
		t.Fatalf("holders after drain = %d, want 0", got)
	}
	for w, tot := range p.Occupancy() {
		if tot > 1e-6 {
			t.Fatalf("worker %d occupancy after drain = %g, want 0", w, tot)
		}
	}
}
