package live

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCloseIsIdempotentAndJoinsErrors(t *testing.T) {
	svc := NewWorkerService(1, 1)
	addr, stop, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	b, err := Dial([]WorkerConn{{Addr: addr}, {Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("clean close of healthy connections: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Errorf("second Close must be a no-op, got: %v", err)
	}
	// After close, operations fail through their callbacks instead of
	// panicking on a nil connection.
	done := make(chan error, 1)
	b.Transfer(0, 100, func(_, _ float64, err error) { done <- err })
	if err := <-done; err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("transfer after Close: err = %v, want connection-closed error", err)
	}
}

func TestCloseRacesInFlightOperations(t *testing.T) {
	// Close while transfers/computes are in flight: nothing may panic or
	// deadlock, and every callback must fire exactly once (wg balance is
	// checked by Run returning). Run under -race this also exercises the
	// clients-slice locking.
	svc := NewWorkerService(1, 1)
	addr, stop, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	b, err := Dial([]WorkerConn{{Addr: addr}, {Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	const ops = 20
	var fired sync.WaitGroup
	fired.Add(3 * ops)
	cb := func(_, _ float64, _ error) { fired.Done() }
	for i := 0; i < ops; i++ {
		b.Transfer(i%2, 4096, cb)
		b.Execute(i%2, 1, false, cb)
		b.ReturnOutput(i%2, 64, cb)
	}
	go b.Close()
	waitDone := make(chan struct{})
	go func() { fired.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(10 * time.Second):
		t.Fatal("callbacks did not all fire after racing Close")
	}
	b.Stop()
	b.Run() // drains the op goroutines; hangs if wg is unbalanced
}

func TestDialFailureClosesPartialConnections(t *testing.T) {
	svc := NewWorkerService(1, 1)
	addr, stop, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// Second address refuses connections: Dial must fail and release the
	// first connection rather than leaking it.
	if _, err := Dial([]WorkerConn{{Addr: addr}, {Addr: "127.0.0.1:1"}}); err == nil {
		t.Fatal("dial to a dead address succeeded")
	}
}

func TestCallTimeoutFailsSlowRPC(t *testing.T) {
	// A worker that takes longer than CallTimeout must surface a
	// deadline error through the done callback instead of wedging the
	// run forever.
	svc := NewWorkerService(200000, 1) // heavy per-unit work
	addr, stop, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	b, err := Dial([]WorkerConn{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.CallTimeout = 10 * time.Millisecond
	done := make(chan error, 1)
	b.Execute(0, 1e7, false, func(_, _ float64, err error) { done <- err })
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "deadline") {
			t.Errorf("slow compute: err = %v, want deadline error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slow RPC never timed out")
	}
	b.Stop()
	b.Run()
}
