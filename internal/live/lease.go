package live

import (
	"fmt"
	"sort"
	"sync"

	"apstdv/internal/errcode"
)

// ErrLeaseNotHeld reports a Release of a worker that is not leased — a
// double release or a bad index. Lease accounting is a correctness
// invariant, but a violation must not crash a daemon mid-drain, so it
// surfaces as a typed error (errcode sentinel) the caller can record.
var ErrLeaseNotHeld = errcode.New("lease_not_held", "live: release of unleased worker")

// LeasePool tracks which workers of a fixed pool are leased out. The
// daemon's job scheduler acquires a disjoint set of workers for each
// live-mode job, so two concurrently running jobs never share a worker
// — without leasing, their chunks would silently interleave on the same
// FIFO worker CPUs and every cost estimate the algorithms build would
// be wrong.
//
// Workers are identified by their index into the daemon's configured
// pool. Acquire hands out the lowest free indexes, so lease sets are
// deterministic for a given admission order.
type LeasePool struct {
	mu     sync.Mutex
	leased []bool
	free   int
}

// NewLeasePool returns a pool of n workers, all free.
func NewLeasePool(n int) *LeasePool {
	return &LeasePool{leased: make([]bool, n), free: n}
}

// Size returns the total worker count.
func (p *LeasePool) Size() int { return len(p.leased) }

// Free returns how many workers are currently unleased.
func (p *LeasePool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free
}

// Acquire leases up to max workers (the lowest free indexes, ascending)
// and returns their indexes. It returns nil when max < 1 or no worker
// is free; partial grants are possible when fewer than max are free.
func (p *LeasePool) Acquire(max int) []int {
	if max < 1 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var got []int
	for i := range p.leased {
		if len(got) == max {
			break
		}
		if !p.leased[i] {
			p.leased[i] = true
			p.free--
			got = append(got, i)
		}
	}
	return got
}

// Release returns leased workers to the pool. Releasing a worker that
// is not leased (double release, bad index) returns ErrLeaseNotHeld;
// the workers that were validly leased are still released, so a buggy
// caller leaks nothing. This used to panic — a daemon bug mid-drain
// would take the whole process down with it.
func (p *LeasePool) Release(workers []int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	for _, w := range workers {
		if w < 0 || w >= len(p.leased) || !p.leased[w] {
			if err == nil {
				err = fmt.Errorf("live: release of unleased worker %d: %w", w, ErrLeaseNotHeld)
			}
			continue
		}
		p.leased[w] = false
		p.free++
	}
	return err
}

// Leased returns the currently leased worker indexes, ascending — an
// observability snapshot for tests and job listings.
func (p *LeasePool) Leased() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for i, l := range p.leased {
		if l {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
