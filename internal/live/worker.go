// Package live is the real execution backend: workers are net/rpc
// services (in-process or remote) that receive actual chunk bytes over
// TCP and burn actual CPU for each load unit. It implements the same
// engine.Backend interface as the simulator, demonstrating that the
// scheduling layer is execution-agnostic — the paper's point about APST
// working over Ssh/Scp, Globus, or anything else that moves files and
// starts processes.
//
// To make scheduling effects observable on a single machine, the backend
// can impose a network model on transfers (latency + bandwidth pacing)
// and per-worker speed factors on computation, while the work itself
// remains real: bytes cross a real TCP connection and the compute loop
// does real floating-point operations.
package live

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"

	"apstdv/internal/transport"
)

// StoreArgs carries chunk data to a worker.
type StoreArgs struct {
	Chunk int
	Data  []byte
	// Last marks the final fragment of a chunk transfer.
	Last bool
}

// StoreReply acknowledges a fragment.
type StoreReply struct {
	Received int
}

// ComputeArgs requests computation of a stored chunk.
type ComputeArgs struct {
	Chunk int
	// Units is the chunk size in load units; the worker burns
	// WorkPerUnit floating-point iterations per unit.
	Units float64
	// Probe marks calibration work.
	Probe bool
}

// ComputeReply reports the result of a computation.
type ComputeReply struct {
	// Checksum is a digest of the work actually performed, so tests can
	// verify computation really ran.
	Checksum float64
	// Units echoes the computed load.
	Units float64
}

// FetchArgs requests output bytes back from the worker.
type FetchArgs struct {
	Chunk int
	Bytes int
}

// FetchReply returns output data.
type FetchReply struct {
	Data []byte
}

// WorkerService is the RPC service a worker exposes. One service
// instance serves one worker CPU: computations are serialized FIFO by a
// mutex, exactly like a single-core node draining its queue.
type WorkerService struct {
	// WorkPerUnit is the number of inner loop iterations one load unit
	// costs. Calibrate so a unit takes the time your experiment needs.
	WorkPerUnit int
	// SpeedFactor scales the work down for faster workers (>1 = faster).
	SpeedFactor float64

	mu       sync.Mutex // serializes Compute: one CPU
	storeMu  sync.Mutex
	received map[int]int
	computed int
	bytesIn  int64

	// aborts is the abort generation: Abort increments it, and any
	// computation whose request predates the increment — running or
	// queued behind the CPU mutex — stops with an error. Master
	// cancellation would otherwise leave the worker burning a stale
	// chunk that the next job's work queues behind.
	aborts atomic.Int64
}

// NewWorkerService returns a worker burning workPerUnit iterations per
// load unit.
func NewWorkerService(workPerUnit int, speed float64) *WorkerService {
	if speed <= 0 {
		speed = 1
	}
	return &WorkerService{
		WorkPerUnit: workPerUnit,
		SpeedFactor: speed,
		received:    make(map[int]int),
	}
}

// Store implements the data path: fragments of a chunk arrive and are
// accounted (the data itself is load, not meaning — the synthetic
// application reads it and computes).
func (s *WorkerService) Store(args StoreArgs, reply *StoreReply) error {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	s.received[args.Chunk] += len(args.Data)
	s.bytesIn += int64(len(args.Data))
	reply.Received = s.received[args.Chunk]
	if args.Last {
		delete(s.received, args.Chunk)
	}
	return nil
}

// Compute implements the compute path: burn real CPU proportional to the
// chunk's load. The checksum prevents the loop from being optimized away
// and lets callers verify work happened.
func (s *WorkerService) Compute(args ComputeArgs, reply *ComputeReply) error {
	if args.Units < 0 {
		return errors.New("live: negative units")
	}
	// Sample the abort generation before queueing on the CPU: an Abort
	// issued while this request waits its FIFO turn kills it too.
	gen := s.aborts.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	iters := int(args.Units * float64(s.WorkPerUnit) / s.SpeedFactor)
	x := 1.000000019
	sum := 0.0
	for i := 0; i < iters; i++ {
		sum += x
		x = x*1.0000001 + 1e-9
		if x > 2 {
			x -= 1
		}
		// One atomic load every 64Ki iterations keeps the abort latency
		// in the microseconds without measurably slowing the hot loop.
		if i&0xFFFF == 0xFFFF && s.aborts.Load() != gen {
			return errAborted
		}
	}
	if s.aborts.Load() != gen {
		return errAborted
	}
	s.computed++
	reply.Checksum = sum
	reply.Units = args.Units
	return nil
}

// errAborted reports a computation killed by Worker.Abort.
var errAborted = errors.New("live: compute aborted")

// AbortArgs is the Worker.Abort request (empty).
type AbortArgs struct{}

// AbortReply is the Worker.Abort response (empty).
type AbortReply struct{}

// Abort kills the running computation and any queued behind it: every
// Compute whose request arrived before this call fails with an abort
// error. Computations submitted afterwards run normally, so a new job
// leasing this worker starts on a clean CPU.
func (s *WorkerService) Abort(args AbortArgs, reply *AbortReply) error {
	s.aborts.Add(1)
	return nil
}

// Fetch implements the output path: return Bytes of (synthetic) output.
func (s *WorkerService) Fetch(args FetchArgs, reply *FetchReply) error {
	if args.Bytes < 0 {
		return errors.New("live: negative output size")
	}
	reply.Data = make([]byte, args.Bytes)
	return nil
}

// Computed returns how many computations this worker has served.
func (s *WorkerService) Computed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.computed
}

// BytesReceived returns the total chunk bytes stored.
func (s *WorkerService) BytesReceived() int64 {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	return s.bytesIn
}

// Serve exposes the service over the frame transport on a loopback TCP
// listener, returning the address and a shutdown function. The shutdown
// function kills the worker outright: it closes the listener and every
// active connection, so in-flight RPCs fail the way they would if the
// node crashed — and aborts any compute those connections had queued,
// so a stopped worker does not keep burning CPU.
func Serve(svc *WorkerService) (addr string, stop func(), err error) {
	return ServeOn(TransportFrame, svc)
}

// ServeOn is Serve with an explicit transport kind (TransportFrame or
// TransportRPC); the dialing backend's WorkerConn.Transport must match.
func ServeOn(kind string, svc *WorkerService) (addr string, stop func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("live: listen: %w", err)
	}
	stop, err = ServeListener(kind, svc, ln)
	if err != nil {
		ln.Close()
		return "", nil, err
	}
	return ln.Addr().String(), stop, nil
}

// ServeListener serves the worker protocol on an established listener
// (Serve/ServeOn with a caller-owned bind address, as cmd/apstdv-worker
// needs). The stop function has Serve's crash semantics.
func ServeListener(kind string, svc *WorkerService, ln net.Listener) (stop func(), err error) {
	switch kind {
	case "", TransportFrame:
		srv := newWorkerFrameServer(svc, transport.ServerConfig{})
		go srv.Serve(ln)
		return func() {
			srv.Close()
			// Kill any compute the dead connections abandoned: a crashed
			// node stops burning CPU, and so must a stopped worker.
			svc.Abort(AbortArgs{}, &AbortReply{})
		}, nil
	case TransportRPC:
		return serveRPC(svc, ln)
	default:
		return nil, fmt.Errorf("live: unknown worker transport %q", kind)
	}
}

// serveRPC is the net/rpc fallback worker server.
func serveRPC(svc *WorkerService, ln net.Listener) (stop func(), err error) {
	srv := rpc.NewServer()
	// Each worker gets its own server, so the service name is fixed.
	if err := srv.RegisterName("Worker", svc); err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var conns []net.Conn
	stopped := false
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			if stopped {
				mu.Unlock()
				conn.Close()
				return
			}
			conns = append(conns, conn)
			mu.Unlock()
			go srv.ServeConn(conn)
		}
	}()
	stop = func() {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return
		}
		stopped = true
		ln.Close()
		for _, c := range conns {
			c.Close()
		}
		svc.Abort(AbortArgs{}, &AbortReply{})
	}
	return stop, nil
}
