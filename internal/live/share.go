package live

import (
	"fmt"
	"sync"

	"apstdv/internal/errcode"
)

// Share allocation errors. They are errcode sentinels so a daemon that
// surfaces them over the wire keeps errors.Is working on the client
// side (see package errcode).
var (
	// ErrShareOversubscribed rejects a share revision that would push
	// some worker's total allocated fraction above 1.0.
	ErrShareOversubscribed = errcode.New("share_oversubscribed", "live: worker share oversubscribed")
	// ErrShareNotHeld reports a release or revision for a job that holds
	// no shares — the share-accounting analogue of a double release.
	ErrShareNotHeld = errcode.New("share_not_held", "live: job holds no worker shares")
)

// shareEpsilon absorbs float accumulation error in the per-worker
// sum ≤ 1.0 invariant check (e.g. three jobs at 1/3 each).
const shareEpsilon = 1e-9

// SharePool tracks fractional worker allocations across concurrently
// running jobs: each job holds a share vector — one CPU fraction per
// worker of a fixed pool — and the pool enforces the invariant that no
// worker's shares ever sum above 1.0. It is the share-based successor
// of LeasePool's boolean leases: a boolean lease is the special case of
// a full (1.0) share, and disjoint full-share vectors reproduce the
// strict-partition behaviour exactly.
//
// The pool is mechanism only. Policy — who gets how much, and when
// shares are revised — lives in the daemon's co-scheduling layer;
// revision is Set with a new vector, which the pool validates
// atomically against everyone else's holdings.
type SharePool struct {
	mu    sync.Mutex
	held  map[int][]float64 // job ID -> per-worker share vector
	total []float64         // per-worker allocated sum across jobs
}

// NewSharePool returns a pool over n workers with nothing allocated.
func NewSharePool(n int) *SharePool {
	return &SharePool{held: make(map[int][]float64), total: make([]float64, n)}
}

// Size returns the worker count.
func (p *SharePool) Size() int { return len(p.total) }

// Set installs (or revises) a job's share vector atomically. shares
// must have one entry per pool worker, each in [0, 1]; an all-zero
// vector is valid and holds nothing. The revision is rejected with
// ErrShareOversubscribed — and the job's previous holdings left intact
// — if any worker's total across jobs would exceed 1.0.
func (p *SharePool) Set(jobID int, shares []float64) error {
	if len(shares) != len(p.total) {
		return fmt.Errorf("live: share vector has %d entries for %d workers", len(shares), len(p.total))
	}
	for w, s := range shares {
		if s < 0 || s > 1 {
			return fmt.Errorf("live: share %g for worker %d outside [0, 1]", s, w)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.held[jobID]
	for w, s := range shares {
		next := p.total[w] + s
		if old != nil {
			next -= old[w]
		}
		if next > 1+shareEpsilon {
			return fmt.Errorf("live: worker %d would be allocated %.4f: %w", w, next, ErrShareOversubscribed)
		}
	}
	for w, s := range shares {
		p.total[w] += s
		if old != nil {
			p.total[w] -= old[w]
		}
		if p.total[w] < 0 {
			p.total[w] = 0 // clamp float residue
		}
	}
	p.held[jobID] = append([]float64(nil), shares...)
	return nil
}

// SetAll installs (or revises) several jobs' share vectors as one
// atomic transition: the invariant is checked against the combined end
// state, so revisions that move share mass between jobs — impossible
// with one-at-a-time Set without a transient violation — commit in one
// step. On error nothing changes.
func (p *SharePool) SetAll(vectors map[int][]float64) error {
	for id, shares := range vectors {
		if len(shares) != len(p.total) {
			return fmt.Errorf("live: job %d share vector has %d entries for %d workers", id, len(shares), len(p.total))
		}
		for w, s := range shares {
			if s < 0 || s > 1 {
				return fmt.Errorf("live: job %d share %g for worker %d outside [0, 1]", id, s, w)
			}
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	next := append([]float64(nil), p.total...)
	for id, shares := range vectors {
		old := p.held[id]
		for w, s := range shares {
			next[w] += s
			if old != nil {
				next[w] -= old[w]
			}
		}
	}
	for w, tot := range next {
		if tot > 1+shareEpsilon {
			return fmt.Errorf("live: worker %d would be allocated %.4f: %w", w, tot, ErrShareOversubscribed)
		}
		if tot < 0 {
			next[w] = 0
		}
	}
	p.total = next
	for id, shares := range vectors {
		p.held[id] = append([]float64(nil), shares...)
	}
	return nil
}

// Release returns all of a job's shares to the pool. Releasing a job
// that holds nothing — a double release, or a job that never acquired —
// returns ErrShareNotHeld; share accounting is a correctness invariant,
// but unlike LeasePool's historical panic the caller decides whether a
// violation is fatal.
func (p *SharePool) Release(jobID int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	shares, ok := p.held[jobID]
	if !ok {
		return fmt.Errorf("live: release of job %d: %w", jobID, ErrShareNotHeld)
	}
	for w, s := range shares {
		p.total[w] -= s
		if p.total[w] < 0 {
			p.total[w] = 0
		}
	}
	delete(p.held, jobID)
	return nil
}

// Shares returns a copy of a job's share vector, or nil when the job
// holds nothing.
func (p *SharePool) Shares(jobID int) []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.held[jobID]
	if !ok {
		return nil
	}
	return append([]float64(nil), s...)
}

// Occupancy returns a copy of the per-worker allocated fractions
// (sum of all jobs' shares on each worker).
func (p *SharePool) Occupancy() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]float64(nil), p.total...)
}

// FreeWorkers returns how many workers are entirely unallocated — the
// share-pool analogue of LeasePool.Free, used by the strict-partition
// policy to size new grants.
func (p *SharePool) FreeWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, t := range p.total {
		if t <= shareEpsilon {
			n++
		}
	}
	return n
}

// Holders returns how many jobs currently hold shares.
func (p *SharePool) Holders() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.held)
}
