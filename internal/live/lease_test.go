package live

import (
	"errors"
	"testing"
	"time"

	"apstdv/internal/errcode"
)

func TestLeasePoolAcquireLowestFree(t *testing.T) {
	p := NewLeasePool(4)
	if got := p.Acquire(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("first acquire = %v, want [0 1]", got)
	}
	if got := p.Acquire(3); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("partial acquire = %v, want [2 3]", got)
	}
	if got := p.Acquire(1); got != nil {
		t.Fatalf("acquire on empty pool = %v, want nil", got)
	}
	p.Release([]int{1})
	if got := p.Acquire(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("acquire after release = %v, want [1]", got)
	}
}

func TestLeasePoolDisjointGrants(t *testing.T) {
	p := NewLeasePool(6)
	a := p.Acquire(3)
	b := p.Acquire(3)
	seen := map[int]bool{}
	for _, w := range append(append([]int{}, a...), b...) {
		if seen[w] {
			t.Fatalf("worker %d leased twice: %v / %v", w, a, b)
		}
		seen[w] = true
	}
	if p.Free() != 0 {
		t.Fatalf("free = %d, want 0", p.Free())
	}
	p.Release(a)
	p.Release(b)
	if p.Free() != 6 {
		t.Fatalf("free after release = %d, want 6", p.Free())
	}
}

// TestLeasePoolDoubleReleaseTypedError pins the double-release
// contract: a typed, errcode-carrying error — never a panic — and the
// pool's accounting stays consistent (valid releases in the same batch
// still land).
func TestLeasePoolDoubleReleaseTypedError(t *testing.T) {
	p := NewLeasePool(2)
	got := p.Acquire(1)
	if err := p.Release(got); err != nil {
		t.Fatalf("first release: %v", err)
	}
	err := p.Release(got)
	if !errors.Is(err, ErrLeaseNotHeld) {
		t.Fatalf("double release err = %v, want ErrLeaseNotHeld", err)
	}
	if errcode.Code(err) != "lease_not_held" {
		t.Fatalf("double release code = %q, want lease_not_held", errcode.Code(err))
	}
	if p.Free() != 2 {
		t.Fatalf("free after double release = %d, want 2", p.Free())
	}
	// A batch mixing a stale index with a valid one releases the valid
	// worker and still reports the violation.
	both := p.Acquire(2)
	if err := p.Release([]int{both[0]}); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := p.Release(both); !errors.Is(err, ErrLeaseNotHeld) {
		t.Fatalf("mixed release err = %v, want ErrLeaseNotHeld", err)
	}
	if p.Free() != 2 {
		t.Fatalf("free after mixed release = %d, want 2", p.Free())
	}
}

func TestLeasePoolLeasedSnapshot(t *testing.T) {
	p := NewLeasePool(5)
	p.Acquire(2)        // 0, 1
	p.Release([]int{0}) // 1 remains
	p.Acquire(1)        // 0 again
	got := p.Leased()   // 0, 1
	want := []int{0, 1}
	if len(got) != len(want) {
		t.Fatalf("leased = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("leased = %v, want %v", got, want)
		}
	}
}

// TestAbortKillsRunningCompute pins the cancellation path: a compute
// burning a large chunk stops with an error shortly after Abort instead
// of running to completion.
func TestAbortKillsRunningCompute(t *testing.T) {
	svc := NewWorkerService(200_000_000, 1) // several seconds of work
	done := make(chan error, 1)
	go func() {
		var reply ComputeReply
		done <- svc.Compute(ComputeArgs{Chunk: 1, Units: 10}, &reply)
	}()
	// Let the loop start, then abort.
	time.Sleep(50 * time.Millisecond)
	var ar AbortReply
	if err := svc.Abort(AbortArgs{}, &ar); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, errAborted) {
			t.Fatalf("compute returned %v, want errAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not stop the compute loop")
	}
	// A computation submitted after the abort runs normally.
	var reply ComputeReply
	if err := svc.Compute(ComputeArgs{Chunk: 2, Units: 0.001}, &reply); err != nil {
		t.Fatalf("post-abort compute failed: %v", err)
	}
	if svc.Computed() != 1 {
		t.Fatalf("computed = %d, want 1 (aborted chunk must not count)", svc.Computed())
	}
}

// TestBackendCancelUnblocksRun pins the daemon-facing contract: Cancel
// aborts worker compute and closes connections, after which Run (once
// stopped) returns because the in-flight operations fail fast.
func TestBackendCancelUnblocksRun(t *testing.T) {
	b, _, cleanup, err := Cluster(2, 200_000_000, NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	opDone := make(chan error, 1)
	b.Execute(0, 10, false, func(start, end float64, err error) { opDone <- err })
	time.Sleep(50 * time.Millisecond)
	b.Cancel()
	select {
	case err := <-opDone:
		if err == nil {
			t.Fatal("compute survived Cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Cancel did not fail the in-flight compute")
	}
	b.Stop()
	ran := make(chan struct{})
	go func() { b.Run(); close(ran) }()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Cancel + Stop")
	}
}
