package live

import (
	"apstdv/internal/transport"
)

// Frame-transport method ids for the worker protocol. Append-only.
const (
	methodStore   uint16 = 1
	methodCompute uint16 = 2
	methodFetch   uint16 = 3
	methodAbort   uint16 = 4
)

// workerFrameMethods maps net/rpc service-method names onto frame
// method ids, mirroring daemon.FrameMethods for the worker protocol.
var workerFrameMethods = map[string]uint16{
	"Worker.Store":   methodStore,
	"Worker.Compute": methodCompute,
	"Worker.Fetch":   methodFetch,
	"Worker.Abort":   methodAbort,
}

// AppendWire implements transport.Appender.
func (a *StoreArgs) AppendWire(b []byte) []byte {
	b = transport.AppendVarint(b, int64(a.Chunk))
	b = transport.AppendBytes(b, a.Data)
	return transport.AppendBool(b, a.Last)
}

// DecodeWire implements transport.Decoder. Data aliases the frame
// buffer and is only valid during the handler — Store reads it and
// returns, never retaining.
func (a *StoreArgs) DecodeWire(d *transport.Dec) {
	a.Chunk = int(d.Varint())
	a.Data = d.Bytes()
	a.Last = d.Bool()
}

// AppendWire implements transport.Appender.
func (r *StoreReply) AppendWire(b []byte) []byte {
	return transport.AppendVarint(b, int64(r.Received))
}

// DecodeWire implements transport.Decoder.
func (r *StoreReply) DecodeWire(d *transport.Dec) { r.Received = int(d.Varint()) }

// AppendWire implements transport.Appender.
func (a *ComputeArgs) AppendWire(b []byte) []byte {
	b = transport.AppendVarint(b, int64(a.Chunk))
	b = transport.AppendF64(b, a.Units)
	return transport.AppendBool(b, a.Probe)
}

// DecodeWire implements transport.Decoder.
func (a *ComputeArgs) DecodeWire(d *transport.Dec) {
	a.Chunk = int(d.Varint())
	a.Units = d.F64()
	a.Probe = d.Bool()
}

// AppendWire implements transport.Appender.
func (r *ComputeReply) AppendWire(b []byte) []byte {
	b = transport.AppendF64(b, r.Checksum)
	return transport.AppendF64(b, r.Units)
}

// DecodeWire implements transport.Decoder.
func (r *ComputeReply) DecodeWire(d *transport.Dec) {
	r.Checksum = d.F64()
	r.Units = d.F64()
}

// AppendWire implements transport.Appender.
func (a *FetchArgs) AppendWire(b []byte) []byte {
	b = transport.AppendVarint(b, int64(a.Chunk))
	return transport.AppendVarint(b, int64(a.Bytes))
}

// DecodeWire implements transport.Decoder.
func (a *FetchArgs) DecodeWire(d *transport.Dec) {
	a.Chunk = int(d.Varint())
	a.Bytes = int(d.Varint())
}

// AppendWire implements transport.Appender.
func (r *FetchReply) AppendWire(b []byte) []byte {
	return transport.AppendBytes(b, r.Data)
}

// DecodeWire implements transport.Decoder. Data is copied: fetched
// output outlives the frame buffer.
func (r *FetchReply) DecodeWire(d *transport.Dec) {
	r.Data = append([]byte(nil), d.Bytes()...)
}

// AppendWire implements transport.Appender.
func (a *AbortArgs) AppendWire(b []byte) []byte { return b }

// DecodeWire implements transport.Decoder.
func (a *AbortArgs) DecodeWire(d *transport.Dec) {}

// AppendWire implements transport.Appender.
func (r *AbortReply) AppendWire(b []byte) []byte { return b }

// DecodeWire implements transport.Decoder.
func (r *AbortReply) DecodeWire(d *transport.Dec) {}

// newWorkerFrameServer registers the worker protocol on a transport
// server.
func newWorkerFrameServer(svc *WorkerService, cfg transport.ServerConfig) *transport.Server {
	s := transport.NewServer(cfg)
	transport.Register[StoreArgs, StoreReply](s, methodStore,
		func(a *StoreArgs, r *StoreReply) error { return svc.Store(*a, r) })
	transport.Register[ComputeArgs, ComputeReply](s, methodCompute,
		func(a *ComputeArgs, r *ComputeReply) error { return svc.Compute(*a, r) })
	transport.Register[FetchArgs, FetchReply](s, methodFetch,
		func(a *FetchArgs, r *FetchReply) error { return svc.Fetch(*a, r) })
	transport.Register[AbortArgs, AbortReply](s, methodAbort,
		func(a *AbortArgs, r *AbortReply) error { return svc.Abort(*a, r) })
	return s
}
