package live

import (
	"fmt"
	"net/rpc"
	"sync"
	"time"
)

// NetModel imposes transfer costs on the data path so that scheduling
// effects are observable even when master and workers share one machine:
// each transfer sleeps Latency, then paces writes at Bandwidth. Zero
// values mean "as fast as the loopback goes".
type NetModel struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second; 0 = unlimited
}

// WorkerConn describes one worker the backend drives.
type WorkerConn struct {
	Addr string
	Net  NetModel
}

// Backend is the live engine.Backend: real RPC, real bytes, real CPU.
type Backend struct {
	clients []*rpc.Client
	nets    []NetModel
	t0      time.Time

	mu      sync.Mutex
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
	err     error

	chunkSeq int64
	seqMu    sync.Mutex

	// FragmentSize is the Store fragment granularity (default 256 KiB).
	FragmentSize int
}

// Dial connects to the given workers.
func Dial(workers []WorkerConn) (*Backend, error) {
	b := &Backend{
		t0:           time.Now(),
		stopCh:       make(chan struct{}),
		FragmentSize: 256 << 10,
	}
	for _, w := range workers {
		c, err := rpc.Dial("tcp", w.Addr)
		if err != nil {
			b.closeAll()
			return nil, fmt.Errorf("live: dial %s: %w", w.Addr, err)
		}
		b.clients = append(b.clients, c)
		b.nets = append(b.nets, w.Net)
	}
	if len(b.clients) == 0 {
		return nil, fmt.Errorf("live: no workers")
	}
	return b, nil
}

// Cluster starts n in-process workers (each on its own loopback TCP
// port) and a backend connected to them. The returned cleanup stops
// everything.
func Cluster(n, workPerUnit int, netModel NetModel) (*Backend, []*WorkerService, func(), error) {
	var services []*WorkerService
	var stops []func()
	var conns []WorkerConn
	cleanup := func() {
		for _, s := range stops {
			s()
		}
	}
	for i := 0; i < n; i++ {
		svc := NewWorkerService(workPerUnit, 1)
		addr, stop, err := Serve(svc)
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		services = append(services, svc)
		stops = append(stops, stop)
		conns = append(conns, WorkerConn{Addr: addr, Net: netModel})
	}
	b, err := Dial(conns)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	all := func() { b.closeAll(); cleanup() }
	return b, services, all, nil
}

func (b *Backend) closeAll() {
	for _, c := range b.clients {
		if c != nil {
			c.Close()
		}
	}
}

// Now implements engine.Backend: seconds since the backend started.
func (b *Backend) Now() float64 { return time.Since(b.t0).Seconds() }

// Workers implements engine.Backend.
func (b *Backend) Workers() int { return len(b.clients) }

// Run implements engine.Backend: block until Stop, then drain callbacks.
func (b *Backend) Run() {
	<-b.stopCh
	b.wg.Wait()
}

// Stop implements engine.Stopper.
func (b *Backend) Stop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.stopped {
		b.stopped = true
		close(b.stopCh)
	}
}

// Err returns the first transport error observed.
func (b *Backend) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

func (b *Backend) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	b.Stop()
}

func (b *Backend) nextChunk() int64 {
	b.seqMu.Lock()
	defer b.seqMu.Unlock()
	b.chunkSeq++
	return b.chunkSeq
}

// Transfer implements engine.Backend: move `bytes` of real data to the
// worker over RPC, paced by the worker's network model. The engine
// guarantees serialization (one outstanding Transfer).
func (b *Backend) Transfer(w int, bytes float64, done func(start, end float64)) {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		start := b.Now()
		nm := b.nets[w]
		if nm.Latency > 0 {
			time.Sleep(nm.Latency)
		}
		chunk := b.nextChunk()
		remaining := int(bytes)
		frag := b.FragmentSize
		if frag <= 0 {
			frag = 256 << 10
		}
		buf := make([]byte, frag)
		sent := 0
		for remaining > 0 || sent == 0 {
			n := remaining
			if n > frag {
				n = frag
			}
			args := StoreArgs{Chunk: int(chunk), Data: buf[:n], Last: n == remaining}
			var reply StoreReply
			if err := b.clients[w].Call("Worker.Store", args, &reply); err != nil {
				b.fail(fmt.Errorf("live: store on worker %d: %w", w, err))
				return
			}
			remaining -= n
			sent += n
			if nm.Bandwidth > 0 && n > 0 {
				time.Sleep(time.Duration(float64(n) / nm.Bandwidth * float64(time.Second)))
			}
			if n == 0 {
				break
			}
		}
		done(start, b.Now())
	}()
}

// Execute implements engine.Backend: RPC the worker's compute loop.
// FIFO ordering comes from the worker's internal mutex.
func (b *Backend) Execute(w int, size float64, probe bool, done func(start, end float64)) {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		start := b.Now()
		args := ComputeArgs{Chunk: int(b.nextChunk()), Units: size, Probe: probe}
		var reply ComputeReply
		if err := b.clients[w].Call("Worker.Compute", args, &reply); err != nil {
			b.fail(fmt.Errorf("live: compute on worker %d: %w", w, err))
			return
		}
		done(start, b.Now())
	}()
}

// ReturnOutput implements engine.Backend: fetch output bytes back.
func (b *Backend) ReturnOutput(w int, bytes float64, done func(start, end float64)) {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		start := b.Now()
		var reply FetchReply
		if err := b.clients[w].Call("Worker.Fetch", FetchArgs{Bytes: int(bytes)}, &reply); err != nil {
			b.fail(fmt.Errorf("live: fetch from worker %d: %w", w, err))
			return
		}
		done(start, b.Now())
	}()
}
