package live

import (
	"errors"
	"fmt"
	"net/rpc"
	"sync"
	"time"

	"apstdv/internal/obs"
	otrace "apstdv/internal/obs/trace"
	"apstdv/internal/transport"
)

// Config carries the backend's cross-cutting dependencies. The zero
// value is valid: no metrics, no tracing.
type Config struct {
	// Metrics, when set, receives the client-side frame/byte counters
	// for every frame-transport worker link (net/rpc links record
	// nothing — that protocol has no metrics seam).
	Metrics *obs.TransportMetrics
}

// NetModel imposes transfer costs on the data path so that scheduling
// effects are observable even when master and workers share one machine:
// each transfer sleeps Latency, then paces writes at Bandwidth. Zero
// values mean "as fast as the loopback goes".
type NetModel struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second; 0 = unlimited
}

// Worker transport kinds for WorkerConn.Transport, ServeOn and
// ClusterOn.
const (
	TransportFrame = "frame"
	TransportRPC   = "rpc"
)

// WorkerConn describes one worker the backend drives.
type WorkerConn struct {
	Addr string
	Net  NetModel
	// Transport selects the wire protocol: TransportFrame (default) or
	// TransportRPC. Must match what the worker serves.
	Transport string
}

// workerLink is the transport seam between the backend and one worker:
// one implementation per wire protocol. Call's timeout semantics differ
// by transport — see each implementation.
type workerLink interface {
	// Call performs one round-trip; timeout <= 0 means unbounded. tc is
	// the caller's trace context: the frame transport carries it in the
	// frame header; net/rpc has no header seam and drops it.
	Call(method string, args, reply any, timeout time.Duration, tc transport.TraceContext) error
	Close() error
}

// rpcLink drives a worker over net/rpc. A timed-out call closes the
// connection: net/rpc has no way to retire a request id, so the stale
// reply must never be readable.
type rpcLink struct{ rc *rpc.Client }

func (l *rpcLink) Call(method string, args, reply any, timeout time.Duration, _ transport.TraceContext) error {
	if timeout <= 0 {
		return l.rc.Call(method, args, reply)
	}
	done := l.rc.Go(method, args, reply, make(chan *rpc.Call, 1)).Done
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case call := <-done:
		return call.Error
	case <-timer.C:
		// Abandon the call: close the connection so the stale reply can
		// never be mistaken for a later call's.
		l.rc.Close()
		return fmt.Errorf("live: %s exceeded %v deadline", method, timeout)
	}
}
func (l *rpcLink) Close() error { return l.rc.Close() }

// frameLink drives a worker over the frame transport, which retires
// timed-out request ids natively — the connection survives a deadline.
type frameLink struct{ c *transport.Conn }

func (l *frameLink) Call(method string, args, reply any, timeout time.Duration, tc transport.TraceContext) error {
	id, ok := workerFrameMethods[method]
	if !ok {
		return fmt.Errorf("live: no frame method id for %q", method)
	}
	a, _ := args.(transport.Appender)
	r, _ := reply.(transport.Decoder)
	err := l.c.CallTimeoutTrace(id, a, r, timeout, tc)
	if errors.Is(err, transport.ErrTimeout) {
		return fmt.Errorf("live: %s exceeded %v deadline: %w", method, timeout, err)
	}
	return err
}
func (l *frameLink) Close() error { return l.c.Close() }

// dialWorker connects one worker link over its configured transport.
func dialWorker(w WorkerConn, cfg Config) (workerLink, error) {
	switch w.Transport {
	case "", TransportFrame:
		c, err := transport.Dial(w.Addr, transport.Config{Metrics: cfg.Metrics})
		if err != nil {
			return nil, err
		}
		return &frameLink{c: c}, nil
	case TransportRPC:
		rc, err := rpc.Dial("tcp", w.Addr)
		if err != nil {
			return nil, err
		}
		return &rpcLink{rc: rc}, nil
	default:
		return nil, fmt.Errorf("live: unknown worker transport %q", w.Transport)
	}
}

// Backend is the live engine.Backend: real RPC, real bytes, real CPU.
//
// Operation failures (broken connection, worker crash, RPC timeout) are
// reported per-operation through the done callbacks, so the engine's
// retry layer can re-dispatch the chunk to a surviving worker instead
// of the whole run dying with the first worker. The first error is
// also retained for Err().
type Backend struct {
	t0 time.Time

	mu      sync.Mutex
	clients []workerLink
	nets    []NetModel
	stopped bool
	closed  bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
	err     error

	chunkSeq int64
	seqMu    sync.Mutex

	// Wall-clock deadline timers armed through the engine.Timer
	// interface, keyed by the ids AfterFunc hands out.
	timerMu  sync.Mutex
	timerSeq uint64
	timers   map[uint64]*time.Timer

	// FragmentSize is the Store fragment granularity (default 256 KiB).
	FragmentSize int
	// CallTimeout bounds each RPC round-trip; a call that exceeds it
	// fails with a deadline error (the connection is closed so the
	// abandoned call cannot complete later and confuse the worker's
	// FIFO). 0 disables the bound.
	CallTimeout time.Duration

	// Trace state installed by SetTrace before the run starts: every
	// worker operation records a span under parent, and frame calls
	// carry the trace context in their headers. All nil/zero when
	// tracing is off.
	tracer      *otrace.Collector
	traceID     otrace.TraceID
	traceParent otrace.SpanID
}

// Dial connects to the given workers. The optional cfg (at most one)
// threads metrics into the frame links; omitting it keeps the
// zero-dependency behaviour.
func Dial(workers []WorkerConn, cfg ...Config) (*Backend, error) {
	var c0 Config
	if len(cfg) > 0 {
		c0 = cfg[0]
	}
	b := &Backend{
		t0:           time.Now(),
		stopCh:       make(chan struct{}),
		FragmentSize: 256 << 10,
	}
	for _, w := range workers {
		c, err := dialWorker(w, c0)
		if err != nil {
			b.Close()
			return nil, fmt.Errorf("live: dial %s: %w", w.Addr, err)
		}
		b.mu.Lock()
		b.clients = append(b.clients, c)
		b.nets = append(b.nets, w.Net)
		b.mu.Unlock()
	}
	if b.Workers() == 0 {
		return nil, fmt.Errorf("live: no workers")
	}
	return b, nil
}

// Cluster starts n in-process workers (each on its own loopback TCP
// port) and a backend connected to them. The returned cleanup stops
// everything.
func Cluster(n, workPerUnit int, netModel NetModel) (*Backend, []*WorkerService, func(), error) {
	var services []*WorkerService
	var stops []func()
	var conns []WorkerConn
	cleanup := func() {
		for _, s := range stops {
			s()
		}
	}
	for i := 0; i < n; i++ {
		svc := NewWorkerService(workPerUnit, 1)
		addr, stop, err := Serve(svc)
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		services = append(services, svc)
		stops = append(stops, stop)
		conns = append(conns, WorkerConn{Addr: addr, Net: netModel})
	}
	b, err := Dial(conns)
	if err != nil {
		cleanup()
		return nil, nil, nil, err
	}
	all := func() { b.Close(); cleanup() }
	return b, services, all, nil
}

// Close shuts every worker connection down and reports the joined close
// errors. It is idempotent and safe to race with in-flight operations:
// connection teardown happens under the backend mutex, and calls racing
// a Close observe RPC errors through their own done callbacks.
func (b *Backend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closeAllLocked()
}

// closeAllLocked closes every live connection, joining the per-
// connection close errors instead of discarding them (a lost FIN on a
// wedged connection used to vanish silently here). Caller holds the
// mutex.
func (b *Backend) closeAllLocked() error {
	if b.closed {
		return nil
	}
	b.closed = true
	var errs []error
	for i, c := range b.clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && !errors.Is(err, rpc.ErrShutdown) && !errors.Is(err, transport.ErrClosed) {
			errs = append(errs, fmt.Errorf("live: close worker %d: %w", i, err))
		}
		b.clients[i] = nil
	}
	return errors.Join(errs...)
}

// Cancel aborts the backend: it fires a best-effort Worker.Abort at
// every still-connected worker (so a compute loop mid-chunk stops
// burning CPU instead of running to completion), then closes every
// connection so the in-flight Store/Compute/Fetch RPCs fail and their
// done callbacks release the engine's accounting. Abort RPCs that do
// not answer within a second are abandoned — a wedged worker must not
// delay cancellation of the rest.
func (b *Backend) Cancel() {
	b.mu.Lock()
	clients := make([]workerLink, len(b.clients))
	copy(clients, b.clients)
	b.mu.Unlock()
	var wg sync.WaitGroup
	for _, c := range clients {
		if c == nil {
			continue
		}
		wg.Add(1)
		go func(c workerLink) {
			defer wg.Done()
			var reply AbortReply
			c.Call("Worker.Abort", &AbortArgs{}, &reply, time.Second, transport.TraceContext{})
		}(c)
	}
	wg.Wait()
	b.Close()
}

// client returns worker w's connection, or an error once the backend is
// closed.
func (b *Backend) client(w int) (workerLink, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || b.clients[w] == nil {
		return nil, fmt.Errorf("live: worker %d connection closed", w)
	}
	return b.clients[w], nil
}

// SetTrace installs the trace context for the coming run: worker
// operations record "worker.store"/"worker.compute"/"worker.fetch"
// spans parented under parent, and frame-transport calls propagate the
// trace id to the worker in their headers. Must be called before the
// engine starts driving the backend (operation goroutines read the
// fields without locks; the goroutine-start edge orders the writes).
func (b *Backend) SetTrace(c *otrace.Collector, tid otrace.TraceID, parent otrace.SpanID) {
	b.tracer = c
	b.traceID = tid
	b.traceParent = parent
}

// opSpan begins one worker-operation span; inert when tracing is off
// (nil collector or zero trace id make Begin return an inert span).
func (b *Backend) opSpan(name string) otrace.Span {
	return b.tracer.Begin(b.traceID, b.traceParent, name)
}

// traceContext is the header context frame calls carry to the worker.
func (b *Backend) traceContext() transport.TraceContext {
	return transport.TraceContext{Trace: uint64(b.traceID), Span: uint64(b.traceParent)}
}

// Now implements engine.Backend: seconds since the backend started.
func (b *Backend) Now() float64 { return time.Since(b.t0).Seconds() }

// Workers implements engine.Backend.
func (b *Backend) Workers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.clients)
}

// Run implements engine.Backend: block until Stop, then drain callbacks.
func (b *Backend) Run() {
	<-b.stopCh
	b.wg.Wait()
}

// Stop implements engine.Stopper.
func (b *Backend) Stop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.stopped {
		b.stopped = true
		close(b.stopCh)
	}
}

// AfterFunc implements engine.Timer on the wall clock. The returned id
// is valid for CancelTimer until the timer fires; a firing and a
// concurrent cancel may race, which the engine tolerates (ids are
// never reused, and its timeout handler matches firings to armed
// deadlines by id under its own lock).
func (b *Backend) AfterFunc(d float64, fn func(uint64)) uint64 {
	b.timerMu.Lock()
	b.timerSeq++
	id := b.timerSeq
	if b.timers == nil {
		b.timers = make(map[uint64]*time.Timer)
	}
	t := time.AfterFunc(time.Duration(d*float64(time.Second)), func() {
		b.timerMu.Lock()
		delete(b.timers, id)
		b.timerMu.Unlock()
		fn(id)
	})
	b.timers[id] = t
	b.timerMu.Unlock()
	return id
}

// CancelTimer implements engine.Timer: it stops the timer and drops its
// table entry. Zero, fired, or stale ids are no-ops.
func (b *Backend) CancelTimer(id uint64) {
	b.timerMu.Lock()
	if t, ok := b.timers[id]; ok {
		t.Stop()
		delete(b.timers, id)
	}
	b.timerMu.Unlock()
}

// Err returns the first transport error observed.
func (b *Backend) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// opFailed records an operation error for Err() and returns it for the
// done callback. Unlike the pre-retry backend it does NOT stop the run:
// the engine decides whether a failure is fatal.
func (b *Backend) opFailed(err error) error {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	return err
}

// call performs one RPC bounded by CallTimeout. Deadline handling is
// the link's: the frame transport retires the request id and keeps the
// connection; net/rpc must close it.
func (b *Backend) call(w int, method string, args, reply any) error {
	c, err := b.client(w)
	if err != nil {
		return err
	}
	if err := c.Call(method, args, reply, b.CallTimeout, b.traceContext()); err != nil {
		return fmt.Errorf("worker %d: %w", w, err)
	}
	return nil
}

func (b *Backend) nextChunk() int64 {
	b.seqMu.Lock()
	defer b.seqMu.Unlock()
	b.chunkSeq++
	return b.chunkSeq
}

// Transfer implements engine.Backend: move `bytes` of real data to the
// worker over RPC, paced by the worker's network model. The engine
// guarantees serialization (one outstanding Transfer).
func (b *Backend) Transfer(w int, bytes float64, done func(start, end float64, err error)) {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		// One span covers the whole fragment loop — per-fragment spans
		// would flood the ring on large transfers.
		sp := b.opSpan("worker.store")
		start := b.Now()
		nm := b.nets[w]
		if nm.Latency > 0 {
			time.Sleep(nm.Latency)
		}
		chunk := b.nextChunk()
		remaining := int(bytes)
		frag := b.FragmentSize
		if frag <= 0 {
			frag = 256 << 10
		}
		buf := make([]byte, frag)
		sent := 0
		for remaining > 0 || sent == 0 {
			n := remaining
			if n > frag {
				n = frag
			}
			args := StoreArgs{Chunk: int(chunk), Data: buf[:n], Last: n == remaining}
			var reply StoreReply
			if err := b.call(w, "Worker.Store", &args, &reply); err != nil {
				err = b.opFailed(fmt.Errorf("live: store on worker %d: %w", w, err))
				sp.End(err)
				done(start, b.Now(), err)
				return
			}
			remaining -= n
			sent += n
			if nm.Bandwidth > 0 && n > 0 {
				time.Sleep(time.Duration(float64(n) / nm.Bandwidth * float64(time.Second)))
			}
			if n == 0 {
				break
			}
		}
		sp.End(nil)
		done(start, b.Now(), nil)
	}()
}

// Execute implements engine.Backend: RPC the worker's compute loop.
// FIFO ordering comes from the worker's internal mutex.
func (b *Backend) Execute(w int, size float64, probe bool, done func(start, end float64, err error)) {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		// Probe RPCs stay unspanned, matching the engine's decision to
		// keep calibration out of the per-chunk latency picture.
		var sp otrace.Span
		if !probe {
			sp = b.opSpan("worker.compute")
		}
		start := b.Now()
		args := ComputeArgs{Chunk: int(b.nextChunk()), Units: size, Probe: probe}
		var reply ComputeReply
		if err := b.call(w, "Worker.Compute", &args, &reply); err != nil {
			err = b.opFailed(fmt.Errorf("live: compute on worker %d: %w", w, err))
			sp.End(err)
			done(start, b.Now(), err)
			return
		}
		sp.End(nil)
		done(start, b.Now(), nil)
	}()
}

// ReturnOutput implements engine.Backend: fetch output bytes back.
func (b *Backend) ReturnOutput(w int, bytes float64, done func(start, end float64, err error)) {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		sp := b.opSpan("worker.fetch")
		start := b.Now()
		var reply FetchReply
		if err := b.call(w, "Worker.Fetch", &FetchArgs{Bytes: int(bytes)}, &reply); err != nil {
			err = b.opFailed(fmt.Errorf("live: fetch from worker %d: %w", w, err))
			sp.End(err)
			done(start, b.Now(), err)
			return
		}
		sp.End(nil)
		done(start, b.Now(), nil)
	}()
}
