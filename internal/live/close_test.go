package live

import (
	"sync"
	"testing"
	"time"
)

// TestBackendCloseIdempotentConcurrentWithCancel pins the shutdown
// contract the daemon relies on: Close may be called any number of
// times, from any number of goroutines, racing Cancel and in-flight
// computes, and every call returns without panicking or deadlocking.
// (The daemon's execute path defers backend.Stop while an AfterFunc
// fires backend.Cancel — exactly this race.)
func TestBackendCloseIdempotentConcurrentWithCancel(t *testing.T) {
	b, _, cleanup, err := Cluster(2, 200_000_000, NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	// Put long computes in flight on both workers so Cancel and Close
	// race real pending RPCs, not idle connections.
	opDone := make(chan error, 2)
	b.Execute(0, 10, false, func(start, end float64, err error) { opDone <- err })
	b.Execute(1, 10, false, func(start, end float64, err error) { opDone <- err })
	time.Sleep(50 * time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); b.Cancel() }()
		wg.Add(1)
		go func() { defer wg.Done(); b.Close() }()
	}
	raced := make(chan struct{})
	go func() { wg.Wait(); close(raced) }()
	select {
	case <-raced:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent Close/Cancel calls did not all return")
	}

	// Both in-flight computes must have been failed by the teardown.
	for i := 0; i < 2; i++ {
		select {
		case err := <-opDone:
			if err == nil {
				t.Fatal("in-flight compute reported success after Close")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight compute never unblocked")
		}
	}

	// Close after full teardown stays a no-op.
	if err := b.Close(); err != nil {
		t.Fatalf("repeat Close after teardown: %v", err)
	}
	// And the connections are really gone: new calls fail fast.
	if _, err := b.client(0); err == nil {
		t.Fatal("client(0) usable after Close")
	}
}
