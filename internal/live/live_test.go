package live

import (
	"context"
	"sync"
	"testing"
	"time"

	"apstdv/internal/dls"
	"apstdv/internal/engine"
	"apstdv/internal/model"
)

func TestWorkerServiceCompute(t *testing.T) {
	svc := NewWorkerService(10000, 1)
	var reply ComputeReply
	if err := svc.Compute(ComputeArgs{Chunk: 1, Units: 10}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Checksum == 0 {
		t.Error("no work performed")
	}
	if reply.Units != 10 {
		t.Errorf("echoed units %g", reply.Units)
	}
	if svc.Computed() != 1 {
		t.Errorf("computed count %d", svc.Computed())
	}
	if err := svc.Compute(ComputeArgs{Units: -1}, &reply); err == nil {
		t.Error("negative units accepted")
	}
}

func TestWorkerServiceStoreAccounting(t *testing.T) {
	svc := NewWorkerService(1, 1)
	var r StoreReply
	if err := svc.Store(StoreArgs{Chunk: 1, Data: make([]byte, 100)}, &r); err != nil {
		t.Fatal(err)
	}
	if r.Received != 100 {
		t.Errorf("received %d", r.Received)
	}
	if err := svc.Store(StoreArgs{Chunk: 1, Data: make([]byte, 50), Last: true}, &r); err != nil {
		t.Fatal(err)
	}
	if r.Received != 150 {
		t.Errorf("received %d after second fragment", r.Received)
	}
	if svc.BytesReceived() != 150 {
		t.Errorf("BytesReceived = %d", svc.BytesReceived())
	}
}

func TestWorkerServiceFetch(t *testing.T) {
	svc := NewWorkerService(1, 1)
	var r FetchReply
	if err := svc.Fetch(FetchArgs{Bytes: 64}, &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Data) != 64 {
		t.Errorf("fetched %d bytes", len(r.Data))
	}
	if err := svc.Fetch(FetchArgs{Bytes: -1}, &r); err == nil {
		t.Error("negative fetch accepted")
	}
}

func TestServeAndDial(t *testing.T) {
	svc := NewWorkerService(1000, 1)
	addr, stop, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	b, err := Dial([]WorkerConn{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if b.Workers() != 1 {
		t.Errorf("Workers = %d", b.Workers())
	}
	var wg sync.WaitGroup
	wg.Add(1)
	b.Execute(0, 5, false, func(s, e float64, _ error) {
		if e < s {
			t.Errorf("timeline [%g, %g]", s, e)
		}
		wg.Done()
	})
	wg.Wait()
	if svc.Computed() != 1 {
		t.Errorf("computed %d", svc.Computed())
	}
}

func TestDialRejectsNoWorkers(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Error("empty worker list accepted")
	}
}

func TestDialRejectsBadAddr(t *testing.T) {
	if _, err := Dial([]WorkerConn{{Addr: "127.0.0.1:1"}}); err == nil {
		t.Error("unreachable worker accepted")
	}
}

func TestTransferMovesRealBytes(t *testing.T) {
	b, services, cleanup, err := Cluster(1, 1000, NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	var wg sync.WaitGroup
	wg.Add(1)
	b.Transfer(0, 1<<20, func(s, e float64, _ error) { wg.Done() })
	wg.Wait()
	if got := services[0].BytesReceived(); got != 1<<20 {
		t.Errorf("worker received %d bytes, want %d", got, 1<<20)
	}
}

func TestNetModelPacesTransfers(t *testing.T) {
	b, _, cleanup, err := Cluster(1, 1000, NetModel{Latency: 30 * time.Millisecond, Bandwidth: 10 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	var dur float64
	var wg sync.WaitGroup
	wg.Add(1)
	b.Transfer(0, 1<<20, func(s, e float64, _ error) { dur = e - s; wg.Done() })
	wg.Wait()
	// 30 ms latency + 1 MiB at 10 MiB/s = 100 ms → at least 120 ms.
	if dur < 0.12 {
		t.Errorf("paced transfer took %.3fs, want ≥ 0.12s", dur)
	}
}

func TestLiveEndToEndWithEngine(t *testing.T) {
	// Full stack on real RPC workers: probing, planning, dispatching.
	b, services, cleanup, err := Cluster(3, 50000, NetModel{Latency: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	app := &model.Application{
		Name: "live-test", TotalLoad: 120, BytesPerUnit: 2048,
		UnitCost: 1, MinChunk: 1,
	}
	tr, err := engine.Execute(context.Background(), engine.Request{
		Backend: b, Algorithm: dls.NewFixedRUMR(), App: app, Config: engine.Config{ProbeLoad: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	rep := tr.BuildReport(3)
	if rep.TotalLoad < 119.9 {
		t.Errorf("computed %.1f of 120 units", rep.TotalLoad)
	}
	totalComputed := 0
	for _, svc := range services {
		totalComputed += svc.Computed()
	}
	// Real chunks + 2 calibration executions per worker (no-op + probe).
	if totalComputed < rep.Chunks {
		t.Errorf("workers computed %d RPCs for %d chunks", totalComputed, rep.Chunks)
	}
	if rep.Makespan <= 0 {
		t.Error("no time elapsed?")
	}
}

func TestLiveEndToEndAllPaperAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("live multi-algorithm run in -short mode")
	}
	for _, alg := range dls.PaperSet() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			b, _, cleanup, err := Cluster(2, 20000, NetModel{})
			if err != nil {
				t.Fatal(err)
			}
			defer cleanup()
			app := &model.Application{
				Name: "live", TotalLoad: 60, BytesPerUnit: 512,
				UnitCost: 1, MinChunk: 1,
			}
			tr, err := engine.Execute(context.Background(), engine.Request{
				Backend: b, Algorithm: alg, App: app, Config: engine.Config{ProbeLoad: 3},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep := tr.BuildReport(2); rep.TotalLoad < 59.9 {
				t.Errorf("computed %.1f of 60", rep.TotalLoad)
			}
		})
	}
}

func TestStopIdempotent(t *testing.T) {
	b, _, cleanup, err := Cluster(1, 100, NetModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	b.Stop()
	b.Stop() // must not panic
	done := make(chan struct{})
	go func() { b.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Error("Run did not return after Stop")
	}
}

func TestHeterogeneousLiveWorkersProbeDifferently(t *testing.T) {
	// Two workers with a 3x speed gap: probing through the real stack
	// must measure the difference, and weighted factoring must give the
	// fast worker more load.
	svcSlow := NewWorkerService(60000, 1)
	addrSlow, stop1, err := Serve(svcSlow)
	if err != nil {
		t.Fatal(err)
	}
	defer stop1()
	svcFast := NewWorkerService(60000, 3)
	addrFast, stop2, err := Serve(svcFast)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	b, err := Dial([]WorkerConn{{Addr: addrSlow}, {Addr: addrFast}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	app := &model.Application{
		Name: "hetero", TotalLoad: 90, BytesPerUnit: 256,
		UnitCost: 1, MinChunk: 1,
	}
	tr, err := engine.Execute(context.Background(), engine.Request{
		Backend: b, Algorithm: dls.NewWeightedFactoring(), App: app, Config: engine.Config{ProbeLoad: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := tr.BuildReport(2)
	if rep.TotalLoad < 89.9 {
		t.Fatalf("computed %.1f of 90", rep.TotalLoad)
	}
	if rep.WorkerLoad[1] <= rep.WorkerLoad[0] {
		t.Errorf("fast worker got %.1f units, slow got %.1f — weights should favor fast",
			rep.WorkerLoad[1], rep.WorkerLoad[0])
	}
}

func TestLiveWorkerFailureSurfacesError(t *testing.T) {
	svc := NewWorkerService(10000, 1)
	addr, stop, err := Serve(svc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dial([]WorkerConn{{Addr: addr}})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the worker mid-run: the backend must record a transport error
	// and stop rather than hang.
	stop()
	app := &model.Application{
		Name: "doomed", TotalLoad: 50, BytesPerUnit: 1024,
		UnitCost: 1, MinChunk: 1,
	}
	done := make(chan error, 1)
	go func() {
		_, err := engine.Execute(context.Background(), engine.Request{
			Backend: b, Algorithm: dls.NewSimple(1), App: app,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil && b.Err() == nil {
			t.Error("dead worker produced neither engine nor backend error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine hung on a dead worker")
	}
}
