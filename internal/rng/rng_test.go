package rng

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d/100 equal values", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed produced a stuck generator")
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Stream(7, "comm")
	b := Stream(7, "comp/0")
	c := Stream(7, "comm") // same label: identical
	for i := 0; i < 100; i++ {
		av, cv := a.Uint64(), c.Uint64()
		if av != cv {
			t.Fatalf("same (seed,label) diverged at draw %d", i)
		}
		if av == b.Uint64() {
			t.Fatalf("different labels collided at draw %d", i)
		}
	}
}

func TestStreamStableAcrossOtherStreams(t *testing.T) {
	// A worker's stream must not depend on how many other streams exist.
	x1 := Stream(9, "comp/3").Uint64()
	_ = Stream(9, "comp/4")
	_ = Stream(9, "bg/1")
	x2 := Stream(9, "comp/3").Uint64()
	if x1 != x2 {
		t.Error("stream value changed when unrelated streams were derived")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g outside [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %.4f, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := draws / n
	for v, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("Intn(%d): value %d drawn %d times, want ≈%d", n, v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(8)
	const mean, sd, n = 10.0, 2.0, 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.03 {
		t.Errorf("normal mean = %.3f, want ≈%.1f", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.03 {
		t.Errorf("normal stddev = %.3f, want ≈%.1f", math.Sqrt(variance), sd)
	}
}

func TestNormalZeroStdDev(t *testing.T) {
	s := New(9)
	if v := s.Normal(5, 0); v != 5 {
		t.Errorf("Normal(5, 0) = %g, want exactly 5", v)
	}
	if v := s.Normal(5, -1); v != 5 {
		t.Errorf("Normal(5, -1) = %g, want exactly 5", v)
	}
}

func TestTruncNormalFloor(t *testing.T) {
	s := New(10)
	for i := 0; i < 100000; i++ {
		v := s.TruncNormal(1, 0.25, 0.1)
		if v < 0.1 {
			t.Fatalf("TruncNormal returned %g below floor 0.1", v)
		}
	}
}

func TestTruncNormalMeanNearlyUnbiased(t *testing.T) {
	// With the floor 9 sigma below the mean, truncation bias is nil.
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.TruncNormal(1, 0.1, 0.1)
	}
	if m := sum / n; math.Abs(m-1) > 0.002 {
		t.Errorf("truncated normal mean = %.4f, want ≈1", m)
	}
}

func TestExpMean(t *testing.T) {
	s := New(12)
	const mean, n = 90.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %g", v)
		}
		sum += v
	}
	if m := sum / n; math.Abs(m-mean)/mean > 0.02 {
		t.Errorf("exponential mean = %.2f, want ≈%.0f", m, mean)
	}
}

func TestExpNonPositiveMean(t *testing.T) {
	if v := New(1).Exp(0); v != 0 {
		t.Errorf("Exp(0) = %g, want 0", v)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(13)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e300 || math.Abs(b) > 1e300 {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		if lo == hi || math.IsInf(hi-lo, 0) {
			return true
		}
		v := s.Uniform(lo, hi)
		return v >= lo && v < hi || v == lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(14)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermShuffles(t *testing.T) {
	s := New(15)
	identity := 0
	for trial := 0; trial < 100; trial++ {
		p := s.Perm(10)
		id := true
		for i, v := range p {
			if i != v {
				id = false
				break
			}
		}
		if id {
			identity++
		}
	}
	if identity > 2 {
		t.Errorf("identity permutation appeared %d/100 times", identity)
	}
}

func TestIndexedStreamSeedMatchesFormattedLabel(t *testing.T) {
	for _, seed := range []uint64{0, 7, 1 << 40} {
		for _, i := range []int{0, 1, 9, 10, 42, 12345} {
			want := StreamSeed(seed, fmt.Sprintf("comp/%d", i))
			if got := IndexedStreamSeed(seed, "comp/", i); got != want {
				t.Fatalf("seed=%d i=%d: got %#x want %#x", seed, i, got, want)
			}
		}
	}
}

func TestSeedReinitializesInPlace(t *testing.T) {
	fresh := New(99)
	s := New(1)
	s.Uint64()
	s.Seed(99)
	for i := 0; i < 16; i++ {
		if got, want := s.Uint64(), fresh.Uint64(); got != want {
			t.Fatalf("draw %d: reseeded source diverged: %#x vs %#x", i, got, want)
		}
	}
}
