// Package rng provides the deterministic random number generation used by
// the simulator and the workload generators.
//
// Every experiment in the paper is an average over ten runs; to make the
// reproduction exactly repeatable we seed every run explicitly and derive
// independent streams for independent stochastic processes (one per worker,
// one for the application, one for background load, ...) by hashing a parent
// seed with a stream label. Deriving streams by label, rather than drawing
// sub-seeds sequentially, keeps a worker's randomness stable when unrelated
// components are added to an experiment.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random source. It implements the same
// core generator everywhere (splitmix64 feeding xoshiro256**), so results
// are identical across platforms and Go versions — unlike math/rand's
// unexported algorithm choices.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from a 64-bit seed via splitmix64, the
// recommended initialization for xoshiro.
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// Seed re-initializes the source in place from a 64-bit seed, exactly as
// New does, so long-lived components (a reusable grid backend) can
// reseed their streams across runs without allocating.
func (s *Source) Seed(seed uint64) {
	sm := seed
	for i := range s.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
}

// fnv64a hash parameters (FNV-1a, 64-bit), inlined so stream derivation
// never allocates a hash.Hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvSeed feeds the parent seed's eight little-endian bytes into a fresh
// FNV-1a state — the common prefix of every stream-label hash.
func fnvSeed(seed uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(seed >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}

// fnvString mixes a string into an FNV-1a state.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// StreamSeed returns the derived 64-bit seed Stream would use for the
// given (seed, label) pair, so a caller holding a live Source can reseed
// it in place instead of allocating a new one.
func StreamSeed(seed uint64, label string) uint64 {
	return fnvString(fnvSeed(seed), label)
}

// IndexedStreamSeed is StreamSeed for labels of the form
// prefix + decimal(i) — e.g. ("comp/", 3) hashes identically to the
// label "comp/3" — without formatting the label. Negative i panics.
func IndexedStreamSeed(seed uint64, prefix string, i int) uint64 {
	if i < 0 {
		panic("rng: IndexedStreamSeed with negative index")
	}
	h := fnvString(fnvSeed(seed), prefix)
	var buf [20]byte
	n := len(buf)
	for {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
		if i == 0 {
			break
		}
	}
	for ; n < len(buf); n++ {
		h ^= uint64(buf[n])
		h *= fnvPrime64
	}
	return h
}

// Stream derives an independent child source from a parent seed and a
// textual label. Identical (seed, label) pairs always yield identical
// streams.
func Stream(seed uint64, label string) *Source {
	return New(StreamSeed(seed, label))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 pseudo-random bits (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Normal returns a draw from Normal(mean, stddev) using the
// Marsaglia polar method.
func (s *Source) Normal(mean, stddev float64) float64 {
	if stddev <= 0 {
		return mean
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		w := math.Sqrt(-2 * math.Log(q) / q)
		return mean + stddev*u*w
	}
}

// TruncNormal returns a Normal(mean, stddev) draw truncated below at lo
// (re-sampling; lo must be well below mean for that to terminate quickly,
// which holds for the paper's γ ≤ 0.25 regimes where lo = mean/10).
func (s *Source) TruncNormal(mean, stddev, lo float64) float64 {
	for i := 0; i < 1000; i++ {
		if x := s.Normal(mean, stddev); x >= lo {
			return x
		}
	}
	return lo
}

// Exp returns a draw from an exponential distribution with the given mean.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return -mean * math.Log(1-s.Float64())
}

// Uniform returns a uniform draw from [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
