// Package parallel is the experiment harness's concurrency substrate: a
// bounded worker pool that fans an index space out across cores while
// keeping results order-stable, so parallel experiment output is
// byte-identical to a sequential run of the same seed.
//
// Every run of the paper's evaluation is an independently seeded,
// fully deterministic simulation (rng.Stream derives each component's
// randomness from the run seed), so the (algorithm, γ, run) cells are
// embarrassingly parallel. The only requirements for determinism are
// that no task shares mutable state with another and that aggregation
// happens in index order after the fan-out — ForEach provides the
// fan-out; callers write task i's result into slot i of a preallocated
// slice and aggregate sequentially afterwards.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWidth is the worker-pool width used when a caller passes a
// non-positive width: one worker per available CPU.
func DefaultWidth() int { return runtime.GOMAXPROCS(0) }

// Width resolves the effective pool width ForEach and ForEachSlot use
// for n tasks: non-positive means DefaultWidth, and the pool never
// exceeds the task count. Callers sizing per-slot scratch (one reusable
// workspace per worker goroutine) use it to allocate exactly one slot
// per worker.
func Width(n, width int) int {
	if width <= 0 {
		width = DefaultWidth()
	}
	if width > n {
		width = n
	}
	if width < 1 {
		width = 1
	}
	return width
}

// ForEach runs fn(i) for every i in [0, n) on a pool of `width` worker
// goroutines (width <= 0 means DefaultWidth). It returns after every
// started task has finished.
//
// Error handling is fail-fast with deterministic reporting: the first
// failure stops workers from claiming further indices (already-running
// tasks complete — simulation runs are not interruptible), and among
// the errors that did occur the one with the lowest index is returned,
// so the reported error does not depend on goroutine scheduling when a
// deterministic earliest failure exists.
//
// With width 1, ForEach degenerates to the exact sequential loop:
// tasks run in index order on the calling goroutine and the first
// error returns immediately.
func ForEach(n, width int, fn func(i int) error) error {
	return ForEachSlot(n, width, func(_, i int) error { return fn(i) })
}

// ForEachSlot is ForEach with worker identity: fn receives the worker
// slot (0 ≤ slot < Width(n, width)) alongside the task index. A slot
// runs at most one task at a time, so per-slot scratch — a reusable
// backend, an engine arena — may be mutated freely by the task without
// synchronization, which is what lets repeated simulated runs recycle
// their allocations across the pool. Task-to-slot assignment is
// scheduling-dependent; determinism must come from the tasks, never
// from which slot ran them.
func ForEachSlot(n, width int, fn func(slot, i int) error) error {
	if n <= 0 {
		return nil
	}
	width = Width(n, width)
	if width == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup

		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(slot, i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stopped.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
