package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachVisitsEveryIndexOnce checks the core contract at several
// widths, including widths above n and the sequential degenerate case.
func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	const n = 100
	for _, width := range []int{0, 1, 2, 7, n, 3 * n} {
		var visits [n]atomic.Int32
		if err := ForEach(n, width, func(i int) error {
			visits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i := range visits {
			if got := visits[i].Load(); got != 1 {
				t.Errorf("width %d: index %d visited %d times", width, i, got)
			}
		}
	}
}

// TestForEachOrderStableResults writes each task's result into its slot
// and checks the collected slice is independent of width — the property
// the experiment drivers rely on for byte-identical output.
func TestForEachOrderStableResults(t *testing.T) {
	const n = 64
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, width := range []int{1, 4, 16} {
		got := make([]int, n)
		if err := ForEach(n, width, func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("width %d: slot %d = %d, want %d", width, i, got[i], want[i])
			}
		}
	}
}

// TestForEachPropagatesError checks a lone failure is returned verbatim
// at any width.
func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, width := range []int{1, 3, 8} {
		err := ForEach(20, width, func(i int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("width %d: got %v, want boom", width, err)
		}
	}
}

// TestForEachReturnsLowestIndexError checks deterministic error
// selection: when several tasks fail, the lowest-index error wins.
func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Fail at index 0 (slowly) and at a high index (fast) so both errors
	// occur before fail-fast can suppress either; index 0 must win.
	err := ForEach(8, 8, func(i int) error {
		if i == 0 {
			time.Sleep(10 * time.Millisecond)
			return errLow
		}
		if i == 7 {
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Errorf("got %v, want the lowest-index error", err)
	}
}

// TestForEachFailFastCancellation checks that after a failure the pool
// stops claiming new indices instead of draining all n tasks.
func TestForEachFailFastCancellation(t *testing.T) {
	const n = 10000
	var started atomic.Int64
	err := ForEach(n, 2, func(i int) error {
		started.Add(1)
		if i == 0 {
			return errors.New("fail early")
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if got := started.Load(); got >= n {
		t.Errorf("all %d tasks ran despite early failure; fail-fast did not cancel", got)
	}
}

// TestForEachSequentialStopsAtError checks the width-1 path preserves
// exact sequential semantics: nothing after the failing index runs.
func TestForEachSequentialStopsAtError(t *testing.T) {
	var ran []int
	err := ForEach(10, 1, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if len(ran) != 4 {
		t.Errorf("ran %v, want exactly [0 1 2 3]", ran)
	}
}

// TestForEachEmpty checks degenerate inputs.
func TestForEachEmpty(t *testing.T) {
	calls := 0
	if err := ForEach(0, 4, func(i int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-5, 4, func(i int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("fn called %d times for empty index spaces", calls)
	}
}
