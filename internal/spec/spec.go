// Package spec implements APST-DV's XML interface (§3.3): the task
// element with its divisibility child that describes a divisible load
// application, and the resource description that defines the platform.
// The schema mirrors the paper's Figures 1 and 6 attribute-for-attribute.
package spec

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"

	"apstdv/internal/divide"
	"apstdv/internal/dls"
)

// Task is the <task> element: the application executable and its I/O,
// plus the divisibility specification.
type Task struct {
	XMLName    xml.Name `xml:"task"`
	Executable string   `xml:"executable,attr"`
	Arguments  string   `xml:"arguments,attr,omitempty"`
	Input      string   `xml:"input,attr,omitempty"`
	Output     string   `xml:"output,attr,omitempty"`

	Divisibility *Divisibility `xml:"divisibility"`
}

// Divisibility is the <divisibility> element APST-DV adds to APST's
// schema (Figure 1; Figure 6 shows the callback variant).
type Divisibility struct {
	// Input names the file(s) containing the load to divide.
	Input string `xml:"input,attr"`
	// Method selects the division method: uniform, index or callback.
	Method string `xml:"method,attr"`

	// Uniform method attributes.
	Start     float64 `xml:"start,attr,omitempty"`
	StepType  string  `xml:"steptype,attr,omitempty"` // "bytes" or "separator"
	StepSize  float64 `xml:"stepsize,attr,omitempty"`
	Separator string  `xml:"separator,attr,omitempty"`

	// Index method attribute.
	IndexFile string `xml:"indexfile,attr,omitempty"`

	// Callback method attributes. Load and ProbeLoad express the load
	// in application work units (the case study uses video frames).
	Callback  string  `xml:"callback,attr,omitempty"`
	Arguments string  `xml:"arguments,attr,omitempty"`
	Load      float64 `xml:"load,attr,omitempty"`
	ProbeLoad float64 `xml:"probe_load,attr,omitempty"`

	// Algorithm selects the DLS algorithm (rumr, umr, wf, simple-5, ...).
	Algorithm string `xml:"algorithm,attr"`
	// Probe names the representative probe input file.
	Probe string `xml:"probe,attr,omitempty"`
}

// Methods and step types accepted by Validate.
const (
	MethodUniform  = "uniform"
	MethodIndex    = "index"
	MethodCallback = "callback"

	StepBytes     = "bytes"
	StepSeparator = "separator"
)

// Parse reads a task specification from XML.
func Parse(r io.Reader) (*Task, error) {
	var t Task
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// ParseFile reads a task specification from a file.
func ParseFile(path string) (*Task, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Encode writes the task back out as indented XML.
func (t *Task) Encode(w io.Writer) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", " ")
	if err := enc.Encode(t); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Validate checks the specification for the errors a user could make.
func (t *Task) Validate() error {
	if t.Executable == "" {
		return fmt.Errorf("spec: task is missing the executable attribute")
	}
	d := t.Divisibility
	if d == nil {
		return fmt.Errorf("spec: task has no divisibility element (use plain APST for indivisible tasks)")
	}
	if d.Input == "" {
		return fmt.Errorf("spec: divisibility is missing the input attribute")
	}
	if d.Algorithm != "" {
		if _, err := dls.New(d.Algorithm); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	switch d.Method {
	case MethodUniform:
		switch d.StepType {
		case StepBytes:
			if d.StepSize <= 0 {
				return fmt.Errorf("spec: uniform/bytes division needs a positive stepsize, got %g", d.StepSize)
			}
		case StepSeparator:
			if len(d.Separator) != 1 {
				return fmt.Errorf("spec: uniform/separator division needs a single-character separator, got %q", d.Separator)
			}
		case "":
			return fmt.Errorf("spec: uniform division is missing the steptype attribute")
		default:
			return fmt.Errorf("spec: unknown steptype %q (want %q or %q)", d.StepType, StepBytes, StepSeparator)
		}
		if d.Start < 0 {
			return fmt.Errorf("spec: negative start offset %g", d.Start)
		}
	case MethodIndex:
		if d.IndexFile == "" {
			return fmt.Errorf("spec: index division is missing the indexfile attribute")
		}
	case MethodCallback:
		if d.Callback == "" {
			return fmt.Errorf("spec: callback division is missing the callback attribute")
		}
		if d.Load <= 0 {
			return fmt.Errorf("spec: callback division needs a positive load (work units), got %g", d.Load)
		}
		if d.ProbeLoad < 0 {
			return fmt.Errorf("spec: negative probe_load %g", d.ProbeLoad)
		}
	case "":
		return fmt.Errorf("spec: divisibility is missing the method attribute")
	default:
		return fmt.Errorf("spec: unknown division method %q (want %s, %s or %s)",
			d.Method, MethodUniform, MethodIndex, MethodCallback)
	}
	return nil
}

// BuildDivider constructs the Divider for this specification. For file
// sizes it consults the filesystem relative to dir (the directory the
// spec lives in); the separator and index methods read their inputs.
func (t *Task) BuildDivider(dir string) (divide.Divider, error) {
	d := t.Divisibility
	resolve := func(name string) string {
		if strings.HasPrefix(name, "/") || dir == "" {
			return name
		}
		return dir + "/" + name
	}
	switch d.Method {
	case MethodUniform:
		switch d.StepType {
		case StepBytes:
			// The input attribute may name several files ("the file(s)
			// that contain the load's input data", §3.3); they form one
			// logical load with file boundaries as implicit cut points.
			paths := strings.Fields(d.Input)
			if len(paths) > 1 {
				sizes := make([]float64, len(paths))
				largest := 0.0
				for i, p := range paths {
					info, err := os.Stat(resolve(p))
					if err != nil {
						return nil, fmt.Errorf("spec: input %s: %w", p, err)
					}
					sizes[i] = float64(info.Size())
					if sizes[i] > largest {
						largest = sizes[i]
					}
				}
				inner, err := divide.NewUniform(largest, d.Start, d.StepSize)
				if err != nil {
					return nil, err
				}
				return divide.NewMultiFile(sizes, inner)
			}
			info, err := os.Stat(resolve(d.Input))
			if err != nil {
				return nil, fmt.Errorf("spec: input %s: %w", d.Input, err)
			}
			u, err := divide.NewUniform(float64(info.Size()), d.Start, d.StepSize)
			if err != nil {
				return nil, err
			}
			return u, nil
		case StepSeparator:
			f, err := os.Open(resolve(d.Input))
			if err != nil {
				return nil, fmt.Errorf("spec: input %s: %w", d.Input, err)
			}
			defer f.Close()
			cuts, total, err := divide.ScanSeparators(f, d.Separator[0])
			if err != nil {
				return nil, err
			}
			return divide.NewIndex(total, cuts)
		}
	case MethodIndex:
		info, err := os.Stat(resolve(d.Input))
		if err != nil {
			return nil, fmt.Errorf("spec: input %s: %w", d.Input, err)
		}
		f, err := os.Open(resolve(d.IndexFile))
		if err != nil {
			return nil, fmt.Errorf("spec: indexfile %s: %w", d.IndexFile, err)
		}
		defer f.Close()
		cuts, err := divide.LoadIndexFile(f)
		if err != nil {
			return nil, err
		}
		return divide.NewIndex(float64(info.Size()), cuts)
	case MethodCallback:
		return divide.NewWorkUnits(int(d.Load))
	}
	return nil, fmt.Errorf("spec: unknown division method %q", d.Method)
}

// BuildMaterializer constructs the Materializer for this specification.
func (t *Task) BuildMaterializer(dir string) (divide.Materializer, error) {
	d := t.Divisibility
	resolve := func(name string) string {
		if strings.HasPrefix(name, "/") || dir == "" {
			return name
		}
		return dir + "/" + name
	}
	switch d.Method {
	case MethodUniform, MethodIndex:
		return divide.FileRange{Path: resolve(d.Input), BytesPerUnit: 1}, nil
	case MethodCallback:
		var args []string
		if d.Arguments != "" {
			args = strings.Fields(d.Arguments)
		}
		return divide.CallbackProgram{Program: resolve(d.Callback), Args: args}, nil
	}
	return nil, fmt.Errorf("spec: unknown division method %q", d.Method)
}
