package spec

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"apstdv/internal/divide"
)

// figure1XML is the paper's Figure 1 specification, verbatim.
const figure1XML = `<task
executable="a_divisible_app"
input="bigfile"
>
<divisibility
input="bigfile"
method="uniform"
start="0"
steptype="bytes"
stepsize="10"
algorithm="rumr"
probe="probefile"
/>
</task>`

// figure6XML is the paper's Figure 6 case-study specification, verbatim.
const figure6XML = `<task
 executable="run_mencoder.sh"
 arguments="input.avi mpeg4.avi"
 input="input.avi"
 output="mpeg4.avi"
>
 <divisibility
  input="input.avi"
  method="callback"
  load="1830"
  callback="callback_avisplit.pl"
  arguments="input.avi"
  algorithm="rumr"
  probe="probe.avi"
  probe_load="21"
 />
</task>`

func TestParseFigure1(t *testing.T) {
	task, err := Parse(strings.NewReader(figure1XML))
	if err != nil {
		t.Fatal(err)
	}
	if task.Executable != "a_divisible_app" || task.Input != "bigfile" {
		t.Errorf("task attrs: %+v", task)
	}
	d := task.Divisibility
	if d.Method != MethodUniform || d.StepType != StepBytes || d.StepSize != 10 {
		t.Errorf("divisibility: %+v", d)
	}
	if d.Algorithm != "rumr" || d.Probe != "probefile" || d.Start != 0 {
		t.Errorf("divisibility attrs: %+v", d)
	}
}

func TestParseFigure6(t *testing.T) {
	task, err := Parse(strings.NewReader(figure6XML))
	if err != nil {
		t.Fatal(err)
	}
	if task.Arguments != "input.avi mpeg4.avi" || task.Output != "mpeg4.avi" {
		t.Errorf("task attrs: %+v", task)
	}
	d := task.Divisibility
	if d.Method != MethodCallback || d.Load != 1830 || d.ProbeLoad != 21 {
		t.Errorf("divisibility: %+v", d)
	}
	if d.Callback != "callback_avisplit.pl" || d.Arguments != "input.avi" {
		t.Errorf("callback attrs: %+v", d)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	task, err := Parse(strings.NewReader(figure6XML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := task.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if *again.Divisibility != *task.Divisibility {
		t.Errorf("round trip changed divisibility:\n%+v\n%+v", task.Divisibility, again.Divisibility)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name, xml, want string
	}{
		{"no executable", `<task><divisibility input="x" method="uniform" steptype="bytes" stepsize="1"/></task>`, "executable"},
		{"no divisibility", `<task executable="e"/>`, "divisibility"},
		{"no input", `<task executable="e"><divisibility method="uniform" steptype="bytes" stepsize="1"/></task>`, "input"},
		{"no method", `<task executable="e"><divisibility input="x"/></task>`, "method"},
		{"bad method", `<task executable="e"><divisibility input="x" method="magic"/></task>`, "unknown division method"},
		{"no steptype", `<task executable="e"><divisibility input="x" method="uniform"/></task>`, "steptype"},
		{"bad steptype", `<task executable="e"><divisibility input="x" method="uniform" steptype="frames"/></task>`, "steptype"},
		{"zero stepsize", `<task executable="e"><divisibility input="x" method="uniform" steptype="bytes" stepsize="0"/></task>`, "stepsize"},
		{"long separator", `<task executable="e"><divisibility input="x" method="uniform" steptype="separator" separator="ab"/></task>`, "separator"},
		{"no indexfile", `<task executable="e"><divisibility input="x" method="index"/></task>`, "indexfile"},
		{"no callback", `<task executable="e"><divisibility input="x" method="callback" load="10"/></task>`, "callback"},
		{"no load", `<task executable="e"><divisibility input="x" method="callback" callback="cb"/></task>`, "load"},
		{"bad algorithm", `<task executable="e"><divisibility input="x" method="uniform" steptype="bytes" stepsize="1" algorithm="quantum-annealer"/></task>`, "unknown algorithm"},
		{"negative start", `<task executable="e"><divisibility input="x" method="uniform" steptype="bytes" stepsize="1" start="-5"/></task>`, "start"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(c.xml))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Parse = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestBuildDividerUniformBytes(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bigfile"), make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	task, err := Parse(strings.NewReader(figure1XML))
	if err != nil {
		t.Fatal(err)
	}
	d, err := task.BuildDivider(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalLoad() != 100 {
		t.Errorf("total = %g, want file size 100", d.TotalLoad())
	}
	if got := d.CutAfter(0, 42); got != 40 {
		t.Errorf("cut near 42 = %g, want 40 (stepsize 10)", got)
	}
}

func TestBuildDividerSeparator(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "recs"), []byte("aa\nbbb\ncc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	xml := `<task executable="e"><divisibility input="recs" method="uniform" steptype="separator" separator="&#10;"/></task>`
	task, err := Parse(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	d, err := task.BuildDivider(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CutAfter(0, 4); got != 3 {
		t.Errorf("cut near 4 = %g, want 3 (after first newline)", got)
	}
}

func TestBuildDividerIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "data"), make([]byte, 1000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "data.idx"), []byte("100\n400\n900\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	xml := `<task executable="e"><divisibility input="data" method="index" indexfile="data.idx"/></task>`
	task, err := Parse(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	d, err := task.BuildDivider(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CutAfter(0, 300); got != 400 {
		t.Errorf("cut near 300 = %g, want 400", got)
	}
}

func TestBuildDividerCallback(t *testing.T) {
	task, err := Parse(strings.NewReader(figure6XML))
	if err != nil {
		t.Fatal(err)
	}
	d, err := task.BuildDivider(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalLoad() != 1830 {
		t.Errorf("total = %g, want 1830 frames", d.TotalLoad())
	}
	if got := d.CutAfter(0, 20.4); got != 20 {
		t.Errorf("frame cut = %g, want 20", got)
	}
}

func TestBuildDividerMissingInput(t *testing.T) {
	task, err := Parse(strings.NewReader(figure1XML))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := task.BuildDivider(t.TempDir()); err == nil {
		t.Error("missing input file accepted")
	}
}

func TestBuildMaterializer(t *testing.T) {
	task, err := Parse(strings.NewReader(figure1XML))
	if err != nil {
		t.Fatal(err)
	}
	m, err := task.BuildMaterializer("/data")
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := m.(divide.FileRange)
	if !ok {
		t.Fatalf("materializer type %T", m)
	}
	if fr.Path != "/data/bigfile" {
		t.Errorf("path = %q", fr.Path)
	}

	cb, err := Parse(strings.NewReader(figure6XML))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cb.BuildMaterializer("/data")
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := m2.(divide.CallbackProgram)
	if !ok {
		t.Fatalf("materializer type %T", m2)
	}
	if cp.Program != "/data/callback_avisplit.pl" || len(cp.Args) != 1 || cp.Args[0] != "input.avi" {
		t.Errorf("callback = %+v", cp)
	}
}

func TestBuildDividerMultiFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "part1"), make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "part2"), make([]byte, 60), 0o644); err != nil {
		t.Fatal(err)
	}
	xmlDoc := `<task executable="e"><divisibility input="part1 part2" method="uniform" steptype="bytes" stepsize="10"/></task>`
	task, err := Parse(strings.NewReader(xmlDoc))
	if err != nil {
		t.Fatal(err)
	}
	d, err := task.BuildDivider(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalLoad() != 160 {
		t.Errorf("total = %g, want 100+60", d.TotalLoad())
	}
	// Cuts align to 10-byte steps within each file; the file boundary at
	// 100 caps any request from inside part1.
	if got := d.CutAfter(95, 130); got != 100 {
		t.Errorf("CutAfter(95, 130) = %g, want the file boundary 100", got)
	}
	if got := d.CutAfter(100, 124); got != 120 {
		t.Errorf("CutAfter(100, 124) = %g, want 120", got)
	}
}

func TestResourcesBatchElement(t *testing.T) {
	xmlDoc := `<resources>
 <cluster name="c" bandwidth="1000" commlatency="1" complatency="0.5">
  <batch cycleinterval="15" dispatchjitter="0.2"/>
  <host name="h1" speed="1"/>
 </cluster>
</resources>`
	res, err := ParseResources(strings.NewReader(xmlDoc))
	if err != nil {
		t.Fatal(err)
	}
	p, err := res.Platform("x")
	if err != nil {
		t.Fatal(err)
	}
	b := p.Workers[0].Batch
	if b == nil || b.CycleInterval != 15 || b.DispatchJitterCV != 0.2 {
		t.Errorf("batch config not carried: %+v", b)
	}
}
