package spec

import (
	"bytes"
	"strings"
	"testing"
)

const resourcesXML = `<resources>
 <cluster name="das2" bandwidth="92000" commlatency="6.4" complatency="0.7">
  <host name="das2-01" speed="1.0"/>
  <host name="das2-02" speed="1.0"/>
 </cluster>
 <cluster name="grail" bandwidth="565000" commlatency="1.0" complatency="0.5">
  <host name="dual" speed="1.0" cpus="2"/>
  <host name="slow" speed="0.5">
   <background meanon="90" meanoff="180" share="0.55"/>
  </host>
 </cluster>
</resources>`

func TestParseResources(t *testing.T) {
	res, err := ParseResources(strings.NewReader(resourcesXML))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("%d clusters", len(res.Clusters))
	}
	if res.Clusters[0].Name != "das2" || res.Clusters[0].Bandwidth != 92000 {
		t.Errorf("cluster 0: %+v", res.Clusters[0])
	}
	if res.Clusters[1].Hosts[1].Background == nil {
		t.Error("background load not parsed")
	}
}

func TestResourcesPlatform(t *testing.T) {
	res, err := ParseResources(strings.NewReader(resourcesXML))
	if err != nil {
		t.Fatal(err)
	}
	p, err := res.Platform("testbed")
	if err != nil {
		t.Fatal(err)
	}
	// 2 das2 hosts + dual (2 CPUs) + slow = 5 workers.
	if len(p.Workers) != 5 {
		t.Fatalf("%d workers, want 5", len(p.Workers))
	}
	if p.Workers[0].CommLatency != 6.4 || p.Workers[0].Bandwidth != 92000 {
		t.Errorf("das2 worker: %+v", p.Workers[0])
	}
	if p.Workers[2].Name != "dual/cpu0" || p.Workers[3].Name != "dual/cpu1" {
		t.Errorf("dual CPU names: %q, %q", p.Workers[2].Name, p.Workers[3].Name)
	}
	slow := p.Workers[4]
	if slow.Speed != 0.5 || slow.Background == nil || slow.Background.Share != 0.55 {
		t.Errorf("slow worker: %+v", slow)
	}
	for i, w := range p.Workers {
		if w.ID != i {
			t.Errorf("worker %d has ID %d", i, w.ID)
		}
	}
}

func TestResourcesPlatformRejectsBadBandwidth(t *testing.T) {
	bad := `<resources><cluster name="c" bandwidth="0"><host name="h" speed="1"/></cluster></resources>`
	res, err := ParseResources(strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Platform("x"); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestResourcesEncodeRoundTrip(t *testing.T) {
	res, err := ParseResources(strings.NewReader(resourcesXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ParseResources(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := res.Platform("x")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := again.Platform("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Workers) != len(p2.Workers) {
		t.Errorf("round trip changed worker count: %d vs %d", len(p1.Workers), len(p2.Workers))
	}
}

func TestParseResourcesGarbage(t *testing.T) {
	if _, err := ParseResources(strings.NewReader("not xml")); err == nil {
		t.Error("garbage accepted")
	}
}
