package spec

import (
	"path/filepath"
	"testing"
)

// TestShippedExampleSpecsParse validates every XML document under
// examples/specs so the shipped examples can never rot.
func TestShippedExampleSpecsParse(t *testing.T) {
	root := "../../examples/specs"
	tasks, err := filepath.Glob(filepath.Join(root, "*.xml"))
	if err != nil || len(tasks) == 0 {
		t.Fatalf("no shipped specs found: %v", err)
	}
	for _, path := range tasks {
		if filepath.Base(path) == "resources_twocluster.xml" {
			res, err := ParseResourcesFile(path)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			p, err := res.Platform("shipped")
			if err != nil {
				t.Errorf("%s: %v", path, err)
				continue
			}
			if len(p.Workers) != 8 {
				t.Errorf("%s: %d workers, want 8 (4 das2 + 2×2 meteor CPUs)", path, len(p.Workers))
			}
			continue
		}
		task, err := ParseFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if task.Divisibility.Algorithm == "" {
			t.Errorf("%s: no algorithm", path)
		}
	}
}
