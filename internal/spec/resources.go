package spec

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"

	"apstdv/internal/model"
	"apstdv/internal/units"
)

// Resources is the platform description — a simplified form of APST's
// resource schema: clusters of hosts with per-cluster network
// characteristics and per-host speeds.
type Resources struct {
	XMLName  xml.Name  `xml:"resources"`
	Clusters []Cluster `xml:"cluster"`
}

// Cluster groups hosts sharing network characteristics (one leaf of the
// single-level tree DLS theory models).
type Cluster struct {
	Name string `xml:"name,attr"`
	// Bandwidth is the effective per-transfer rate from the master to
	// this cluster's hosts, in bytes/s.
	Bandwidth float64 `xml:"bandwidth,attr"`
	// CommLatency and CompLatency are the start-up costs in seconds.
	CommLatency float64 `xml:"commlatency,attr"`
	CompLatency float64 `xml:"complatency,attr"`
	// Batch describes the cluster's batch scheduler, when access is not
	// interactive (SGE/PBS in the paper's testbed).
	Batch *BatchXML `xml:"batch"`
	Hosts []Host    `xml:"host"`
}

// Host is one worker.
type Host struct {
	Name string `xml:"name,attr"`
	// Speed is the relative compute speed (1.0 = reference).
	Speed float64 `xml:"speed,attr"`
	// CPUs makes the host contribute several workers (the case study's
	// dual-processor machine). 0 means 1.
	CPUs int `xml:"cpus,attr,omitempty"`
	// Background CPU contention for non-dedicated hosts.
	Background *BackgroundXML `xml:"background"`
}

// BackgroundXML mirrors model.BackgroundLoad in the resource schema.
type BackgroundXML struct {
	MeanOn  float64 `xml:"meanon,attr"`
	MeanOff float64 `xml:"meanoff,attr"`
	Share   float64 `xml:"share,attr"`
}

// BatchXML mirrors model.BatchQueue in the resource schema.
type BatchXML struct {
	CycleInterval    float64 `xml:"cycleinterval,attr,omitempty"`
	DispatchJitterCV float64 `xml:"dispatchjitter,attr,omitempty"`
	ExternalRate     float64 `xml:"externalrate,attr,omitempty"`
	ExternalMeanHold float64 `xml:"externalhold,attr,omitempty"`
}

// ParseResources reads a resource description from XML.
func ParseResources(r io.Reader) (*Resources, error) {
	var res Resources
	if err := xml.NewDecoder(r).Decode(&res); err != nil {
		return nil, fmt.Errorf("spec: resources: %w", err)
	}
	return &res, nil
}

// ParseResourcesFile reads a resource description from a file.
func ParseResourcesFile(path string) (*Resources, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseResources(f)
}

// Platform converts the description into the model the engine runs on.
func (r *Resources) Platform(name string) (*model.Platform, error) {
	p := &model.Platform{Name: name}
	for _, cl := range r.Clusters {
		if cl.Bandwidth <= 0 {
			return nil, fmt.Errorf("spec: cluster %q has non-positive bandwidth %g", cl.Name, cl.Bandwidth)
		}
		var batch *model.BatchQueue
		if cl.Batch != nil {
			batch = &model.BatchQueue{
				CycleInterval:    units.Seconds(cl.Batch.CycleInterval),
				DispatchJitterCV: cl.Batch.DispatchJitterCV,
				ExternalRate:     cl.Batch.ExternalRate,
				ExternalMeanHold: units.Seconds(cl.Batch.ExternalMeanHold),
			}
		}
		for _, h := range cl.Hosts {
			cpus := h.CPUs
			if cpus <= 0 {
				cpus = 1
			}
			var bg *model.BackgroundLoad
			if h.Background != nil {
				bg = &model.BackgroundLoad{
					MeanOn:  units.Seconds(h.Background.MeanOn),
					MeanOff: units.Seconds(h.Background.MeanOff),
					Share:   h.Background.Share,
				}
			}
			for c := 0; c < cpus; c++ {
				name := h.Name
				if cpus > 1 {
					name = fmt.Sprintf("%s/cpu%d", h.Name, c)
				}
				p.Workers = append(p.Workers, model.Worker{
					ID:          len(p.Workers),
					Name:        name,
					Cluster:     cl.Name,
					Speed:       h.Speed,
					CompLatency: units.Seconds(cl.CompLatency),
					Bandwidth:   units.Rate(cl.Bandwidth),
					CommLatency: units.Seconds(cl.CommLatency),
					Background:  bg,
					Batch:       batch,
				})
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// EncodeResources writes the description as indented XML.
func (r *Resources) Encode(w io.Writer) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", " ")
	if err := enc.Encode(r); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}
